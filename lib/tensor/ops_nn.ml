(** Neural-network operators: softmax, normalization, convolution, pooling,
    embedding lookup, and non-maximum suppression (the paper's example of an
    upper-bound shape function).

    [softmax] and [layer_norm] over the last axis of a float tensor take a
    fused row-wise path partitioned over the {!Nimble_parallel.Parallel}
    domain pool: rows are independent, each is handled by exactly one
    domain, and the per-row arithmetic replicates the composed
    reduce/elementwise pipeline operation for operation, so the fused path
    is bitwise-identical to the sequential composition at any pool
    width. *)

module Parallel = Nimble_parallel.Parallel

let row_grain ~row_len =
  Parallel.grain_for ~work_per_item:(4 * row_len)
    ~min_work:Parallel.default_min_work

(** Numerically stable softmax along [axis]. *)
let softmax ?(axis = -1) a =
  let s = Tensor.shape a in
  let r = Shape.rank s in
  let fast =
    r > 0 && s.(r - 1) > 0
    && Shape.normalize_axis ~rank:r axis = r - 1
    && Dtype.is_float (Tensor.dtype a)
    && (match a.Tensor.buf with Tensor.Floats _ -> true | Tensor.Ints _ -> false)
  in
  if not fast then begin
    let m = Ops_reduce.max ~axis ~keepdims:true a in
    let shifted = Ops_elem.sub a m in
    let e = Ops_elem.exp shifted in
    let z = Ops_reduce.sum ~axis ~keepdims:true e in
    Ops_elem.div e z
  end
  else begin
    let d = s.(r - 1) in
    let rows = Tensor.numel a / d in
    let out = Tensor.empty ~dtype:(Tensor.dtype a) s in
    let src = Tensor.float_buf a and dst = Tensor.float_buf out in
    Parallel.parallel_for ~grain:(row_grain ~row_len:d) rows (fun lo hi ->
        for row = lo to hi - 1 do
          let base = row * d in
          (* max, exp(x - max), sum, divide: same per-element operations
             and order as the composed reduce/elementwise pipeline *)
          let m = ref Float.neg_infinity in
          for j = 0 to d - 1 do
            m := Float.max !m (Array.unsafe_get src (base + j))
          done;
          let m = !m in
          let z = ref 0.0 in
          for j = 0 to d - 1 do
            let e = Stdlib.exp (Array.unsafe_get src (base + j) -. m) in
            Array.unsafe_set dst (base + j) e;
            z := !z +. e
          done;
          let z = !z in
          for j = 0 to d - 1 do
            let e = Array.unsafe_get dst (base + j) in
            Array.unsafe_set dst (base + j)
              (if z = 0.0 then Float.nan else e /. z)
          done
        done);
    out
  end

let log_softmax ?(axis = -1) a =
  Ops_elem.log (softmax ~axis a)

(** Layer normalization over the last axis with learned [gamma]/[beta]. *)
let layer_norm ?(eps = 1e-5) a ~gamma ~beta =
  let s = Tensor.shape a in
  let r = Shape.rank s in
  let fast =
    r > 0 && s.(r - 1) > 0
    && Shape.equal (Tensor.shape gamma) [| s.(r - 1) |]
    && Shape.equal (Tensor.shape beta) [| s.(r - 1) |]
    && Dtype.equal (Tensor.dtype a) (Tensor.dtype gamma)
    && Dtype.equal (Tensor.dtype a) (Tensor.dtype beta)
    && Dtype.is_float (Tensor.dtype a)
    && (match (a.Tensor.buf, gamma.Tensor.buf, beta.Tensor.buf) with
       | Tensor.Floats _, Tensor.Floats _, Tensor.Floats _ -> true
       | _ -> false)
  in
  if not fast then begin
    let axis = -1 in
    let mu = Ops_reduce.mean ~axis ~keepdims:true a in
    let centered = Ops_elem.sub a mu in
    let var = Ops_reduce.mean ~axis ~keepdims:true (Ops_elem.mul centered centered) in
    let denom = Ops_elem.sqrt (Ops_elem.add_scalar var eps) in
    Ops_elem.add (Ops_elem.mul (Ops_elem.div centered denom) gamma) beta
  end
  else begin
    let d = s.(r - 1) in
    let rows = Tensor.numel a / d in
    let inv_d = 1.0 /. float_of_int d in
    let out = Tensor.empty ~dtype:(Tensor.dtype a) s in
    let src = Tensor.float_buf a and dst = Tensor.float_buf out in
    let g = Tensor.float_buf gamma and bt = Tensor.float_buf beta in
    Parallel.parallel_for ~grain:(row_grain ~row_len:d) rows (fun lo hi ->
        for row = lo to hi - 1 do
          let base = row * d in
          (* mean = sum * (1/d), centered, var = sum(c*c) * (1/d),
             out = ((c / sqrt(var + eps)) * gamma) + beta — replicating
             the composed pipeline's operations exactly (including the
             divide-by-zero -> nan rule of Ops_elem.div) *)
          let sum = ref 0.0 in
          for j = 0 to d - 1 do
            sum := !sum +. Array.unsafe_get src (base + j)
          done;
          let mu = !sum *. inv_d in
          let sumsq = ref 0.0 in
          for j = 0 to d - 1 do
            let c = Array.unsafe_get src (base + j) -. mu in
            Array.unsafe_set dst (base + j) c;
            sumsq := !sumsq +. (c *. c)
          done;
          let denom = Stdlib.sqrt ((!sumsq *. inv_d) +. eps) in
          for j = 0 to d - 1 do
            let c = Array.unsafe_get dst (base + j) in
            let scaled = if denom = 0.0 then Float.nan else c /. denom in
            Array.unsafe_set dst (base + j)
              ((scaled *. Array.unsafe_get g j) +. Array.unsafe_get bt j)
          done
        done);
    out
  end

(** Inference-mode batch norm for NCHW tensors. *)
let batch_norm ?(eps = 1e-5) a ~gamma ~beta ~mean ~var =
  let s = Tensor.shape a in
  if Shape.rank s <> 4 then
    Tensor.type_err "batch_norm: expected NCHW rank-4, got %a" Shape.pp s;
  let c = s.(1) in
  let param_shape = [| 1; c; 1; 1 |] in
  let rs t = Tensor.reshape t param_shape in
  let denom = Ops_elem.sqrt (Ops_elem.add_scalar (rs var) eps) in
  Ops_elem.add
    (Ops_elem.mul (Ops_elem.div (Ops_elem.sub a (rs mean)) denom) (rs gamma))
    (rs beta)

(** Embedding lookup: [(vocab, dim)] table indexed by integer ids. *)
let embedding table ids =
  Ops_shape.take ~axis:0 table ids

(** 2-D convolution, NCHW data and OIHW weights, symmetric padding. *)
let conv2d ?(stride = 1) ?(padding = 0) data weight =
  let ds = Tensor.shape data and ws = Tensor.shape weight in
  if Shape.rank ds <> 4 || Shape.rank ws <> 4 then
    Tensor.type_err "conv2d: expected NCHW/OIHW rank-4, got %a and %a" Shape.pp
      ds Shape.pp ws;
  let n = ds.(0) and ci = ds.(1) and h = ds.(2) and w = ds.(3) in
  let co = ws.(0) and kh = ws.(2) and kw = ws.(3) in
  if ws.(1) <> ci then
    Tensor.type_err "conv2d: channel mismatch (%d vs %d)" ci ws.(1);
  let oh = ((h + (2 * padding) - kh) / stride) + 1 in
  let ow = ((w + (2 * padding) - kw) / stride) + 1 in
  if oh <= 0 || ow <= 0 then
    Tensor.type_err "conv2d: kernel larger than padded input";
  let out = Tensor.zeros ~dtype:Dtype.F32 [| n; co; oh; ow |] in
  for b = 0 to n - 1 do
    for o = 0 to co - 1 do
      for y = 0 to oh - 1 do
        for x = 0 to ow - 1 do
          let acc = ref 0.0 in
          for c = 0 to ci - 1 do
            for dy = 0 to kh - 1 do
              let iy = (y * stride) + dy - padding in
              if iy >= 0 && iy < h then
                for dx = 0 to kw - 1 do
                  let ix = (x * stride) + dx - padding in
                  if ix >= 0 && ix < w then begin
                    let di = (((((b * ci) + c) * h) + iy) * w) + ix in
                    let wi = (((((o * ci) + c) * kh) + dy) * kw) + dx in
                    acc := !acc +. (Tensor.get_float data di *. Tensor.get_float weight wi)
                  end
                done
            done
          done;
          let oi = (((((b * co) + o) * oh) + y) * ow) + x in
          Tensor.set_float out oi !acc
        done
      done
    done
  done;
  out

let pool2d ~init ~combine ~finish ?(stride = 2) ~window data =
  let s = Tensor.shape data in
  if Shape.rank s <> 4 then
    Tensor.type_err "pool2d: expected NCHW rank-4, got %a" Shape.pp s;
  let n = s.(0) and c = s.(1) and h = s.(2) and w = s.(3) in
  let oh = ((h - window) / stride) + 1 in
  let ow = ((w - window) / stride) + 1 in
  if oh <= 0 || ow <= 0 then Tensor.type_err "pool2d: window larger than input";
  let out = Tensor.empty ~dtype:(Tensor.dtype data) [| n; c; oh; ow |] in
  for b = 0 to n - 1 do
    for ch = 0 to c - 1 do
      for y = 0 to oh - 1 do
        for x = 0 to ow - 1 do
          let acc = ref init in
          for dy = 0 to window - 1 do
            for dx = 0 to window - 1 do
              let iy = (y * stride) + dy and ix = (x * stride) + dx in
              let di = (((((b * c) + ch) * h) + iy) * w) + ix in
              acc := combine !acc (Tensor.get_float data di)
            done
          done;
          let oi = (((((b * c) + ch) * oh) + y) * ow) + x in
          Tensor.set_float out oi (finish !acc)
        done
      done
    done
  done;
  out

let max_pool2d ?(stride = 2) ~window data =
  pool2d ~init:Float.neg_infinity ~combine:Float.max ~finish:Fun.id ~stride
    ~window data

let avg_pool2d ?(stride = 2) ~window data =
  let denom = float_of_int (window * window) in
  pool2d ~init:0.0 ~combine:( +. ) ~finish:(fun v -> v /. denom) ~stride ~window
    data

(** Global average pooling: NCHW -> (N, C). *)
let global_avg_pool2d data =
  let s = Tensor.shape data in
  if Shape.rank s <> 4 then
    Tensor.type_err "global_avg_pool2d: expected NCHW rank-4, got %a" Shape.pp s;
  (* reduce H (axis 2), then the remaining spatial axis (again axis 2) *)
  Ops_reduce.mean ~axis:2 (Ops_reduce.mean ~axis:2 data)

(** Non-maximum suppression over [(num_boxes, 5)] rows of
    [(score, x1, y1, x2, y2)]. Returns the kept rows. The number of survivors
    is data-dependent and bounded above by [num_boxes] — the canonical
    upper-bound shape function example from the paper (§4.2). *)
let nms ?(iou_threshold = 0.5) ?(score_threshold = 0.0) boxes =
  let s = Tensor.shape boxes in
  if Shape.rank s <> 2 || s.(1) <> 5 then
    Tensor.type_err "nms: expected (n, 5) boxes, got %a" Shape.pp s;
  let n = s.(0) in
  let row i = Array.init 5 (fun j -> Tensor.get_float boxes ((i * 5) + j)) in
  let area b = Float.max 0.0 (b.(3) -. b.(1)) *. Float.max 0.0 (b.(4) -. b.(2)) in
  let iou a b =
    let x1 = Float.max a.(1) b.(1) and y1 = Float.max a.(2) b.(2) in
    let x2 = Float.min a.(3) b.(3) and y2 = Float.min a.(4) b.(4) in
    let inter = Float.max 0.0 (x2 -. x1) *. Float.max 0.0 (y2 -. y1) in
    let union = area a +. area b -. inter in
    if union <= 0.0 then 0.0 else inter /. union
  in
  let order =
    List.init n Fun.id
    |> List.filter (fun i -> (row i).(0) >= score_threshold)
    |> List.sort (fun i j -> Float.compare (row j).(0) (row i).(0))
  in
  let kept = ref [] in
  List.iter
    (fun i ->
      let bi = row i in
      if List.for_all (fun j -> iou bi (row j) < iou_threshold) !kept then
        kept := !kept @ [ i ])
    order;
  let kept = !kept in
  let out = Tensor.empty ~dtype:(Tensor.dtype boxes) [| List.length kept; 5 |] in
  List.iteri
    (fun oi i ->
      for j = 0 to 4 do
        Tensor.set_float out ((oi * 5) + j) (Tensor.get_float boxes ((i * 5) + j))
      done)
    kept;
  out
