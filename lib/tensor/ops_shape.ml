(** Shape-manipulating operators: transpose, concat, split, slice, take,
    and the data-dependent-shape operators the paper calls out ([arange],
    [unique]). *)

(** Permute dimensions; [axes] defaults to full reversal. *)
let transpose ?axes a =
  let s = Tensor.shape a in
  let r = Shape.rank s in
  let axes =
    match axes with
    | Some ax -> ax
    | None -> Array.init r (fun i -> r - 1 - i)
  in
  if Array.length axes <> r then
    Tensor.type_err "transpose: %d axes for rank %d" (Array.length axes) r;
  let seen = Array.make r false in
  Array.iter
    (fun ax ->
      let ax = Shape.normalize_axis ~rank:r ax in
      if seen.(ax) then Tensor.type_err "transpose: duplicate axis %d" ax;
      seen.(ax) <- true)
    axes;
  let out_shape = Array.map (fun ax -> s.(Shape.normalize_axis ~rank:r ax)) axes in
  let out = Tensor.empty ~dtype:(Tensor.dtype a) out_shape in
  for i = 0 to Tensor.numel a - 1 do
    let out_idx = Shape.unravel out_shape i in
    let in_idx = Array.make r 0 in
    Array.iteri (fun j ax -> in_idx.(Shape.normalize_axis ~rank:r ax) <- out_idx.(j)) axes;
    Tensor.set_float out i (Tensor.get_float a (Shape.linear_index s in_idx))
  done;
  out

(** Concatenate along [axis]; all other dims must match. *)
let concat ~axis (ts : Tensor.t list) =
  match ts with
  | [] -> Tensor.type_err "concat: empty input list"
  | first :: _ ->
      let r = Tensor.rank first in
      let axis = Shape.normalize_axis ~rank:r axis in
      let base = Tensor.shape first in
      let total =
        List.fold_left
          (fun acc t ->
            let s = Tensor.shape t in
            if Shape.rank s <> r then
              Tensor.type_err "concat: rank mismatch %a vs %a" Shape.pp base Shape.pp s;
            Array.iteri
              (fun i d ->
                if i <> axis && d <> base.(i) then
                  Tensor.type_err "concat: dim %d mismatch %a vs %a" i Shape.pp base
                    Shape.pp s)
              s;
            acc + s.(axis))
          0 ts
      in
      let out_shape = Array.mapi (fun i d -> if i = axis then total else d) base in
      let out = Tensor.empty ~dtype:(Tensor.dtype first) out_shape in
      (* Copy each input into its slice of the output along [axis]. *)
      let offset = ref 0 in
      List.iter
        (fun t ->
          let s = Tensor.shape t in
          for i = 0 to Tensor.numel t - 1 do
            let idx = Shape.unravel s i in
            idx.(axis) <- idx.(axis) + !offset;
            Tensor.set_float out (Shape.linear_index out_shape idx) (Tensor.get_float t i)
          done;
          offset := !offset + s.(axis))
        ts;
      out

(** Split into [sections] equal parts along [axis]. *)
let split ~axis ~sections a =
  let s = Tensor.shape a in
  let axis = Shape.normalize_axis ~rank:(Shape.rank s) axis in
  if sections <= 0 || s.(axis) mod sections <> 0 then
    Tensor.type_err "split: dim %d not divisible into %d sections" s.(axis) sections;
  let part = s.(axis) / sections in
  let out_shape = Array.mapi (fun i d -> if i = axis then part else d) s in
  List.init sections (fun sec ->
      let out = Tensor.empty ~dtype:(Tensor.dtype a) out_shape in
      for i = 0 to Tensor.numel out - 1 do
        let idx = Shape.unravel out_shape i in
        idx.(axis) <- idx.(axis) + (sec * part);
        Tensor.set_float out i (Tensor.get_float a (Shape.linear_index s idx))
      done;
      out)

(** [strided_slice ~begins ~ends a]: per-dim windows from [begins]
    (inclusive) to [ends] (exclusive), step 1. Negative indices count from
    the end; ends are clamped. *)
let strided_slice ~begins ~ends a =
  let s = Tensor.shape a in
  let r = Shape.rank s in
  if Array.length begins <> r || Array.length ends <> r then
    Tensor.type_err "strided_slice: begins/ends rank mismatch";
  let lo = Array.make r 0 and hi = Array.make r 0 in
  for i = 0 to r - 1 do
    let norm v = if v < 0 then v + s.(i) else v in
    lo.(i) <- Stdlib.max 0 (Stdlib.min (norm begins.(i)) s.(i));
    hi.(i) <- Stdlib.max lo.(i) (Stdlib.min (norm ends.(i)) s.(i))
  done;
  let out_shape = Array.init r (fun i -> hi.(i) - lo.(i)) in
  let out = Tensor.empty ~dtype:(Tensor.dtype a) out_shape in
  for i = 0 to Tensor.numel out - 1 do
    let idx = Shape.unravel out_shape i in
    let src = Array.mapi (fun j v -> v + lo.(j)) idx in
    Tensor.set_float out i (Tensor.get_float a (Shape.linear_index s src))
  done;
  out

(** Gather rows: [take ~axis data indices] with integer [indices]. *)
let take ?(axis = 0) data indices =
  let s = Tensor.shape data in
  let axis = Shape.normalize_axis ~rank:(Shape.rank s) axis in
  let is = Tensor.shape indices in
  (* Output shape: s with dim [axis] replaced by the index shape. *)
  let out_shape =
    Array.concat
      [ Array.sub s 0 axis; is; Array.sub s (axis + 1) (Shape.rank s - axis - 1) ]
  in
  let out = Tensor.empty ~dtype:(Tensor.dtype data) out_shape in
  let ir = Shape.rank is in
  for i = 0 to Tensor.numel out - 1 do
    let idx = Shape.unravel out_shape i in
    let ind_idx = Array.sub idx axis ir in
    let which = Tensor.get_int indices (Shape.linear_index is ind_idx) in
    let which = if which < 0 then which + s.(axis) else which in
    if which < 0 || which >= s.(axis) then
      Tensor.type_err "take: index %d out of bounds for dim %d" which s.(axis);
    let src =
      Array.concat
        [ Array.sub idx 0 axis; [| which |];
          Array.sub idx (axis + ir) (Array.length idx - axis - ir) ]
    in
    Tensor.set_float out i (Tensor.get_float data (Shape.linear_index s src))
  done;
  out

(** [arange start stop step]: data-dependent output shape (paper §4.2). *)
let arange ?(dtype = Dtype.F32) ~start ~stop ~step () =
  if step = 0.0 then Tensor.type_err "arange: step must be nonzero";
  let n = Stdlib.max 0 (int_of_float (Float.ceil ((stop -. start) /. step))) in
  let out = Tensor.empty ~dtype [| n |] in
  for i = 0 to n - 1 do
    Tensor.set_float out i (start +. (float_of_int i *. step))
  done;
  out

(** Unique elements of a rank-1 tensor, in order of first occurrence:
    data-dependent output shape (paper §4.2). *)
let unique a =
  if Tensor.rank a <> 1 then
    Tensor.type_err "unique: expected rank-1, got %a" Shape.pp (Tensor.shape a);
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  for i = 0 to Tensor.numel a - 1 do
    let v = Tensor.get_float a i in
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      acc := v :: !acc
    end
  done;
  let vals = Array.of_list (List.rev !acc) in
  Tensor.of_float_array ~dtype:(Tensor.dtype a) [| Array.length vals |] vals

(** Repeat the tensor along each axis per [reps]. *)
let tile ~reps a =
  let s = Tensor.shape a in
  let r = Shape.rank s in
  if Array.length reps <> r then Tensor.type_err "tile: reps rank mismatch";
  let out_shape = Array.mapi (fun i d -> d * reps.(i)) s in
  let out = Tensor.empty ~dtype:(Tensor.dtype a) out_shape in
  for i = 0 to Tensor.numel out - 1 do
    let idx = Shape.unravel out_shape i in
    let src = Array.mapi (fun j v -> v mod s.(j)) idx in
    Tensor.set_float out i (Tensor.get_float a (Shape.linear_index s src))
  done;
  out

(** Stack rank-r tensors into a rank-(r+1) tensor along a new leading axis. *)
let stack (ts : Tensor.t list) =
  match ts with
  | [] -> Tensor.type_err "stack: empty input list"
  | first :: _ ->
      let expanded =
        List.map (fun t -> Tensor.reshape t (Shape.insert_axis (Tensor.shape t) 0)) ts
      in
      ignore first;
      concat ~axis:0 expanded
