(** Dense n-dimensional tensors.

    A tensor owns a contiguous row-major buffer. Buffers are plain OCaml
    arrays — [float array] for floating dtypes, [int array] for integer
    dtypes — because the native compiler produces far better code for them
    than for Bigarrays (unboxed access, register-tiled loops); the dtype
    remains a logical tag that drives promotion, serialization width and
    byte accounting. Views are not implemented: every shape-changing op
    copies, which matches the semantics the Nimble VM needs (tensors
    allocated out of explicit [storage] regions; see {!Storage}). *)

type buf =
  | Floats of float array  (** F32 / F64 *)
  | Ints of int array  (** I32 / I64 / U8 *)

type f32_buf = float array
(** The raw buffer type kernel code works on. *)

type t = { shape : Shape.t; dtype : Dtype.t; buf : buf }

exception Type_error of string

let type_err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let shape t = t.shape
let rank t = Shape.rank t.shape
let numel t = Shape.numel t.shape
let dtype t = t.dtype

let size_in_bytes t = numel t * Dtype.size_in_bytes t.dtype

(* ------------------------------------------------------------------ *)
(* Creation                                                            *)
(* ------------------------------------------------------------------ *)

let alloc_buf (dt : Dtype.t) n : buf =
  if Dtype.is_float dt then Floats (Array.make n 0.0) else Ints (Array.make n 0)

let empty ?(dtype = Dtype.F32) shape =
  Shape.validate shape;
  { shape = Array.copy shape; dtype; buf = alloc_buf dtype (Shape.numel shape) }

let clamp_u8 v = v land 0xff

let fill_float t v =
  (match t.buf with
  | Floats b -> Array.fill b 0 (Array.length b) v
  | Ints b ->
      let iv = int_of_float v in
      let iv = if t.dtype = Dtype.U8 then clamp_u8 iv else iv in
      Array.fill b 0 (Array.length b) iv);
  t

let full ?(dtype = Dtype.F32) shape v = fill_float (empty ~dtype shape) v
let zeros ?(dtype = Dtype.F32) shape = full ~dtype shape 0.0
let ones ?(dtype = Dtype.F32) shape = full ~dtype shape 1.0
let scalar ?(dtype = Dtype.F32) v = full ~dtype Shape.scalar v

(* ------------------------------------------------------------------ *)
(* Element access                                                      *)
(* ------------------------------------------------------------------ *)

let get_float t i =
  match t.buf with
  | Floats b -> Array.unsafe_get b i
  | Ints b -> float_of_int (Array.unsafe_get b i)

let set_float t i v =
  match t.buf with
  | Floats b -> Array.unsafe_set b i v
  | Ints b ->
      let iv = int_of_float v in
      Array.unsafe_set b i (if t.dtype = Dtype.U8 then clamp_u8 iv else iv)

let get_int t i =
  match t.buf with
  | Floats b -> int_of_float (Array.unsafe_get b i)
  | Ints b -> Array.unsafe_get b i

let set_int t i v =
  match t.buf with
  | Floats b -> Array.unsafe_set b i (float_of_int v)
  | Ints b -> Array.unsafe_set b i (if t.dtype = Dtype.U8 then clamp_u8 v else v)

let get t idx = get_float t (Shape.linear_index t.shape idx)
let set t idx v = set_float t (Shape.linear_index t.shape idx) v

let item t =
  if numel t <> 1 then type_err "item: tensor has %d elements" (numel t);
  get_float t 0

let item_int t =
  if numel t <> 1 then type_err "item_int: tensor has %d elements" (numel t);
  get_int t 0

(** Raw float buffer of a floating tensor (for hand-written kernels). *)
let float_buf t =
  match t.buf with
  | Floats b -> b
  | Ints _ -> type_err "float_buf: tensor has dtype %a" Dtype.pp t.dtype

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)
(* ------------------------------------------------------------------ *)

let of_float_array ?(dtype = Dtype.F32) shape (src : float array) =
  if Array.length src <> Shape.numel shape then
    type_err "of_float_array: %d elements for shape %a" (Array.length src)
      Shape.pp shape;
  if Dtype.is_float dtype then
    (* already the buffer representation: one copy, no per-element dispatch *)
    { shape = Array.copy shape; dtype; buf = Floats (Array.copy src) }
  else begin
    let t = empty ~dtype shape in
    Array.iteri (fun i v -> set_float t i v) src;
    t
  end

let of_int_array ?(dtype = Dtype.I64) shape (src : int array) =
  if Array.length src <> Shape.numel shape then
    type_err "of_int_array: %d elements for shape %a" (Array.length src)
      Shape.pp shape;
  let t = empty ~dtype shape in
  Array.iteri (fun i v -> set_int t i v) src;
  t

let to_float_array t =
  match t.buf with
  | Floats b -> Array.copy b
  | Ints _ -> Array.init (numel t) (get_float t)

let to_int_array t =
  match t.buf with
  | Ints b -> Array.copy b
  | Floats _ -> Array.init (numel t) (get_int t)

(** A fresh tensor with identical contents. *)
let copy t =
  let buf =
    match t.buf with
    | Floats b -> Floats (Array.copy b)
    | Ints b -> Ints (Array.copy b)
  in
  { shape = Array.copy t.shape; dtype = t.dtype; buf }

(** Copy contents of [src] into [dst] (same dtype class and element count):
    the destination-passing blit used by the VM's invoke_mut. *)
let blit ~src ~dst =
  if numel src <> numel dst then
    type_err "blit: element count mismatch (%d vs %d)" (numel src) (numel dst);
  match (src.buf, dst.buf) with
  | Floats a, Floats b -> Array.blit a 0 b 0 (Array.length a)
  | Ints a, Ints b -> Array.blit a 0 b 0 (Array.length a)
  | _ ->
      for i = 0 to numel src - 1 do
        set_float dst i (get_float src i)
      done

(** Same data, new shape (copies; element count must match). *)
let reshape t target =
  let new_shape = Shape.resolve_reshape ~from:t.shape target in
  let out = copy t in
  { out with shape = new_shape }

let astype t dt =
  if Dtype.equal t.dtype dt then copy t
  else begin
    let out = empty ~dtype:dt t.shape in
    if Dtype.is_float dt then
      for i = 0 to numel t - 1 do
        set_float out i (get_float t i)
      done
    else
      for i = 0 to numel t - 1 do
        set_int out i (get_int t i)
      done;
    out
  end

(** A rank-1 i64 tensor holding the shape of [t] — the runtime value produced
    by the VM's [ShapeOf] instruction. *)
let shape_tensor t = of_int_array ~dtype:Dtype.I64 [| rank t |] (Array.copy t.shape)

(** Interpret a rank-1 integer tensor as a shape. *)
let to_shape t =
  if rank t <> 1 then type_err "to_shape: expected rank-1, got %a" Shape.pp t.shape;
  to_int_array t

(* ------------------------------------------------------------------ *)
(* Structural helpers                                                  *)
(* ------------------------------------------------------------------ *)

let equal_shape a b = Shape.equal a.shape b.shape

let approx_equal ?(atol = 1e-5) ?(rtol = 1e-4) a b =
  equal_shape a b
  && Dtype.equal a.dtype b.dtype
  &&
  let n = numel a in
  let rec go i =
    if i >= n then true
    else
      let x = get_float a i and y = get_float b i in
      let tol = atol +. (rtol *. Float.abs y) in
      if Float.abs (x -. y) <= tol then go (i + 1) else false
  in
  go 0

let equal a b = approx_equal ~atol:0.0 ~rtol:0.0 a b

let init ?(dtype = Dtype.F32) shape f =
  let t = empty ~dtype shape in
  for i = 0 to numel t - 1 do
    set_float t i (f (Shape.unravel shape i))
  done;
  t

let randn ?(dtype = Dtype.F32) ?(scale = 1.0) rng shape =
  let t = empty ~dtype shape in
  for i = 0 to numel t - 1 do
    set_float t i (scale *. Rng.normal rng)
  done;
  t

let rand_uniform ?(dtype = Dtype.F32) rng ~lo ~hi shape =
  let t = empty ~dtype shape in
  for i = 0 to numel t - 1 do
    set_float t i (Rng.uniform rng ~lo ~hi)
  done;
  t

let pp ppf t =
  let n = numel t in
  let max_show = 12 in
  let elems =
    List.init (min n max_show) (fun i ->
        if Dtype.is_float t.dtype then Fmt.str "%g" (get_float t i)
        else string_of_int (get_int t i))
  in
  let suffix = if n > max_show then "; ..." else "" in
  Fmt.pf ppf "Tensor%a<%a>[%s%s]" Shape.pp t.shape Dtype.pp t.dtype
    (String.concat "; " elems)
    suffix

let to_string t = Fmt.str "%a" pp t
