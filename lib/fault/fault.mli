(** Deterministic, seed-driven fault injection (chaos testing support;
    grammar and usage in [docs/ROBUSTNESS.md]).

    Runtime subsystems call {!check} at named injection points; a
    configured rule makes some fraction of those calls raise {!Injected}.
    The decision is a pure function of [(seed, point, attempt index)], so
    a run with a fixed spec faults at exactly the same attempts every
    time, regardless of scheduling. Configure via the [NIMBLE_FAULT_SPEC]
    environment variable (read once at startup) or {!configure}.
    Unconfigured, {!check} is one atomic load. *)

(** Whether a retry of the faulted operation can be expected to succeed:
    [Transient] faults model recoverable conditions (the serving engine
    retries them with backoff); [Persistent] faults fire on every
    matching attempt's draw and are surfaced immediately. *)
type mode = Transient | Persistent

(** Raised by {!check} when the rule for [point] fires. *)
exception Injected of { point : string; mode : mode }

(** Raised by {!configure} (or startup parsing of [NIMBLE_FAULT_SPEC])
    on a malformed spec. *)
exception Spec_error of string

(** Every injection point wired into the runtime ([storage_alloc],
    [kernel_launch], [shape_func], [queue_push], [deserialize],
    [worker_loop], [breaker_probe], [snapshot_io]); ["*"] in a spec
    expands to this list. *)
val well_known_points : string list

(** Install a spec such as ["seed=11;*=0.05"] or
    ["kernel_launch=1.0:persistent"], replacing any previous
    configuration and resetting all counters. [""] or ["off"] disables
    injection. @raise Spec_error on a malformed spec. *)
val configure : string -> unit

(** Remove any configuration: subsequent {!check}s are free no-ops. *)
val disable : unit -> unit

(** Whether any injection rule is active. *)
val enabled : unit -> bool

(** The active spec string, when injection is configured. *)
val spec : unit -> string option

(** Evaluate injection point [point]: returns normally, or raises
    {!Injected} when the configured rule for [point] fires on this
    attempt. *)
val check : string -> unit

(** Run [f] with injection suspended (configuration and counters kept;
    every {!check} inside is a no-op). Process-wide, so use it after
    workers have drained — e.g. to compute a fault-free reference result
    at the end of a chaos run. *)
val with_suspended : (unit -> 'a) -> 'a

(** [(point, times {!check} ran)] for every evaluated point, sorted. *)
val attempts : unit -> (string * int) list

(** [(point, times a fault was injected)], same ordering as {!attempts}. *)
val hits : unit -> (string * int) list

(** Zero the attempt/hit counters, keeping the configuration. *)
val reset_counters : unit -> unit

(** Render a {!mode} as ["transient"] / ["persistent"]. *)
val pp_mode : Format.formatter -> mode -> unit
