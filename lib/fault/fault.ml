(** Deterministic fault-injection registry.

    Named injection points across the runtime ({!well_known_points}) call
    {!check}; when a configured rule matches, the call raises {!Injected}
    instead of returning. Whether a given attempt faults is a pure
    function of [(seed, point, attempt counter)] — a splitmix64 hash
    compared against the rule's rate — so a chaos run with a fixed spec
    replays identically, independent of scheduling.

    Configuration comes from the [NIMBLE_FAULT_SPEC] environment variable
    (read once at program start) or an explicit {!configure} call (tests,
    the CLI [--fault] flag). Grammar (see [docs/ROBUSTNESS.md]):

    {v
      spec    ::= clause (';' clause)*
      clause  ::= "off"
                | "seed=" INT
                | point "=" RATE [":transient" | ":persistent"]
      point   ::= a well-known point name | "*"   (all well-known points)
      RATE    ::= float in [0,1]
    v}

    Example: [seed=11;*=0.05] — 5% transient faults at every point;
    [kernel_launch=1.0:persistent] — every kernel launch traps, and
    retrying cannot help.

    When no spec is configured, {!check} is a single atomic load —
    injection costs nothing in production builds. *)

type mode = Transient | Persistent

exception Injected of { point : string; mode : mode }

exception Spec_error of string

let spec_err fmt = Fmt.kstr (fun s -> raise (Spec_error s)) fmt

(** Every injection point wired into the runtime; ["*"] in a spec expands
    to exactly this list. *)
let well_known_points =
  [
    "storage_alloc" (* [AllocStorage] in the VM dispatch loop *);
    "kernel_launch" (* [InvokePacked] of a kernel *);
    "shape_func" (* [InvokePacked] of a shape function *);
    "queue_push" (* serving-engine admission ([Squeue.try_push]) *);
    "deserialize" (* [Serialize.of_bytes] *);
    "worker_loop" (* serving-engine worker batch loop *);
    "breaker_probe" (* circuit-breaker half-open trial dispatch ([Breaker]) *);
    "snapshot_io" (* fleet snapshot read/write ([Serve.Cache]) *);
  ]

type rule = { rate : float; rule_mode : mode }

type counters = { mutable attempts : int; mutable hits : int }

type state = {
  spec : string;
  seed : int;
  rules : (string * rule) list;
  tallies : (string, counters) Hashtbl.t;
}

let enabled_flag = Atomic.make false

(* The active configuration. Written at startup / by [configure] (rare),
   read by every [check]; counter mutation is serialized by [mux]. *)
let state : state option ref = ref None

let mux = Mutex.create ()

let locked f =
  Mutex.lock mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock mux) f

(* ------------------------------ spec parsing ------------------------------ *)

let parse_mode point = function
  | None -> Transient
  | Some "transient" -> Transient
  | Some "persistent" -> Persistent
  | Some m -> spec_err "%s: bad mode %S (want transient or persistent)" point m

let parse_clause (seed, rules) clause =
  match String.index_opt clause '=' with
  | None when String.equal clause "off" -> (seed, rules)
  | None -> spec_err "bad clause %S (want point=rate, seed=N, or off)" clause
  | Some i -> (
      let key = String.trim (String.sub clause 0 i) in
      let value =
        String.trim (String.sub clause (i + 1) (String.length clause - i - 1))
      in
      match key with
      | "seed" -> (
          match int_of_string_opt value with
          | Some s -> (s, rules)
          | None -> spec_err "seed=%S is not an integer" value)
      | point ->
          let rate_s, mode_s =
            match String.index_opt value ':' with
            | None -> (value, None)
            | Some j ->
                ( String.sub value 0 j,
                  Some (String.sub value (j + 1) (String.length value - j - 1)) )
          in
          let rate =
            match float_of_string_opt rate_s with
            | Some r when r >= 0.0 && r <= 1.0 -> r
            | Some r -> spec_err "%s: rate %g outside [0,1]" point r
            | None -> spec_err "%s: rate %S is not a number" point rate_s
          in
          let rule = { rate; rule_mode = parse_mode point mode_s } in
          let points =
            if String.equal point "*" then well_known_points
            else if String.equal point "" then spec_err "empty point name"
            else [ point ]
          in
          (seed, List.map (fun p -> (p, rule)) points @ rules))

let parse_spec spec : int * (string * rule) list =
  String.split_on_char ';' spec
  |> List.map String.trim
  |> List.filter (fun c -> c <> "")
  |> List.fold_left parse_clause (0, [])

(** Install a spec (replacing any previous configuration and resetting
    all counters). [""] or ["off"] disables injection entirely.
    @raise Spec_error on a malformed spec. *)
let configure spec =
  let seed, rules = parse_spec spec in
  locked (fun () ->
      if rules = [] then begin
        state := None;
        Atomic.set enabled_flag false
      end
      else begin
        state := Some { spec; seed; rules; tallies = Hashtbl.create 8 };
        Atomic.set enabled_flag true
      end)

(** Remove any configuration: subsequent {!check}s are free no-ops. *)
let disable () =
  locked (fun () ->
      state := None;
      Atomic.set enabled_flag false)

let enabled () = Atomic.get enabled_flag

(** The active spec string, when injection is configured. *)
let spec () = locked (fun () -> Option.map (fun s -> s.spec) !state)

(* Read the environment exactly once, at program start, so every library
   that links this module sees the same configuration without an
   initialization race between domains. *)
let () =
  match Sys.getenv_opt "NIMBLE_FAULT_SPEC" with
  | None | Some "" -> ()
  | Some spec -> configure spec

(* ------------------------- deterministic decision ------------------------- *)

let splitmix64 (s : int64) : int64 =
  let open Int64 in
  let z = add s 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* A uniform draw in [0,1) from (seed, point, attempt): hash the point
   name into the seed, then advance by the attempt index. *)
let uniform ~seed ~point ~attempt =
  let h =
    String.fold_left
      (fun acc c -> Int64.add (Int64.mul acc 31L) (Int64.of_int (Char.code c)))
      1469598103934665603L point
  in
  let x = splitmix64 (Int64.logxor (Int64.of_int seed) h) in
  let x = splitmix64 (Int64.add x (Int64.of_int attempt)) in
  Int64.to_float (Int64.shift_right_logical x 11) /. 9007199254740992.0

(** Evaluate injection point [point]: returns normally, or raises
    {!Injected} when the configured rule for [point] fires on this
    attempt. A no-op when nothing is configured. *)
let check point =
  if Atomic.get enabled_flag then begin
    let decision =
      locked (fun () ->
          match !state with
          | None -> None
          | Some st -> (
              match List.assoc_opt point st.rules with
              | None -> None
              | Some rule ->
                  let c =
                    match Hashtbl.find_opt st.tallies point with
                    | Some c -> c
                    | None ->
                        let c = { attempts = 0; hits = 0 } in
                        Hashtbl.replace st.tallies point c;
                        c
                  in
                  let attempt = c.attempts in
                  c.attempts <- attempt + 1;
                  if uniform ~seed:st.seed ~point ~attempt < rule.rate then begin
                    c.hits <- c.hits + 1;
                    Some rule.rule_mode
                  end
                  else None))
    in
    match decision with
    | Some mode -> raise (Injected { point; mode })
    | None -> ()
  end

(** Run [f] with injection suspended: the configuration and counters are
    kept, but every {!check} in the dynamic extent of [f] is a no-op.
    Process-wide — concurrent domains also see injection off while [f]
    runs — so it belongs after workers have drained (e.g. computing a
    fault-free reference result at the end of a chaos run). *)
let with_suspended f =
  let was = Atomic.get enabled_flag in
  Atomic.set enabled_flag false;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag was) f

(* ------------------------------- counters ------------------------------- *)

let tally f =
  locked (fun () ->
      match !state with
      | None -> []
      | Some st ->
          Hashtbl.fold (fun p c acc -> (p, f c) :: acc) st.tallies []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b))

(** [(point, times check ran)] for every point that has been evaluated. *)
let attempts () = tally (fun c -> c.attempts)

(** [(point, times a fault was injected)], same ordering as {!attempts}. *)
let hits () = tally (fun c -> c.hits)

(** Zero the attempt/hit counters, keeping the configuration. *)
let reset_counters () =
  locked (fun () ->
      match !state with None -> () | Some st -> Hashtbl.reset st.tallies)

let pp_mode ppf = function
  | Transient -> Fmt.string ppf "transient"
  | Persistent -> Fmt.string ppf "persistent"
