(** Multicore kernel execution: a lazily-initialized fixed pool of
    [Domain]s with static-chunked {!parallel_for}.

    Width comes from [NIMBLE_NUM_DOMAINS] (default
    [Domain.recommended_domain_count () - 1], clamped to at least 1).
    Width 1 takes the exact sequential code path with zero
    synchronization cost. Chunk boundaries depend only on [(n, grain,
    width)], and each index runs on exactly one domain, so kernels
    that write each output element from exactly one index produce
    bitwise-identical results at every width. See
    [docs/PARALLELISM.md]. *)

(** The configured total parallelism width, counting the caller
    (resolved from [NIMBLE_NUM_DOMAINS] on first use). *)
val num_domains : unit -> int

(** Reconfigure the width (clamped to at least 1); joins any existing
    worker domains first, and the pool respawns lazily at the new
    width. Call only between parallel regions (e.g. harness setup). *)
val set_num_domains : int -> unit

(** Join every worker domain and forget the pool; a later
    {!parallel_for} respawns it lazily. *)
val shutdown : unit -> unit

(** [parallel_for ~grain n body] partitions [\[0, n)] into contiguous
    chunks of at least [grain] indices (default 1) and runs
    [body lo hi] for each chunk, using at most {!num_domains} domains
    including the caller. Falls back to {!run_sequential} when the
    width is 1, when [n <= grain], or when called from inside another
    parallel region. Exceptions raised by a chunk are re-raised in the
    caller after all chunks finish. *)
val parallel_for : ?grain:int -> int -> (int -> int -> unit) -> unit

(** [run_sequential n body] is [body 0 n] on the calling domain — the
    escape hatch every [NIMBLE_NUM_DOMAINS=1] run takes. *)
val run_sequential : int -> (int -> int -> unit) -> unit

(** [pinned_sequential f] runs [f ()] with this domain pinned to the
    sequential path: every {!parallel_for} it performs (however deeply)
    degrades to {!run_sequential} without touching the shared pool.
    The serving engine ([Nimble_serve]) pins each VM worker this way
    when several workers run concurrently, so request-level parallelism
    owns the cores instead of contending for the single kernel-pool job
    slot. Results are unchanged either way (chunking is deterministic).
    Exception-safe; nests freely. *)
val pinned_sequential : (unit -> 'a) -> 'a

(** Cumulative observability counters (atomic — any domain may initiate
    a region; snapshot/diff around a kernel call to attribute runs). *)
type snapshot = {
  sn_seq_runs : int;  (** [parallel_for] calls that ran sequentially *)
  sn_par_runs : int;  (** calls that fanned out over the pool *)
  sn_chunks : int;  (** total chunks executed across parallel runs *)
  sn_workers : int;  (** participating domains, summed over runs *)
}

(** Current cumulative counters. *)
val snapshot : unit -> snapshot

(** Field-wise [after - before]. *)
val diff : before:snapshot -> after:snapshot -> snapshot

(** Zero the counters (the pool itself is untouched). *)
val reset_counters : unit -> unit

(** [grain_for ~work_per_item ~min_work] is [max 1 (min_work /
    work_per_item)]: the grain that keeps roughly [min_work] scalar
    operations per chunk. *)
val grain_for : work_per_item:int -> min_work:int -> int

(** Default [min_work] for {!grain_for} (16384 scalar ops): below one
    chunk of this size a kernel stays sequential. *)
val default_min_work : int
