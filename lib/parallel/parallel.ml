(** Multicore kernel execution: a lazily-initialized fixed pool of
    {!Domain}s with static-chunked [parallel_for].

    The pool width (total parallelism, counting the calling domain)
    comes from [NIMBLE_NUM_DOMAINS], defaulting to
    [Domain.recommended_domain_count () - 1] clamped to at least 1.
    Width 1 means no worker domains exist and every [parallel_for]
    degenerates to the plain sequential loop — the exact single-core
    code path, with zero synchronization cost.

    Determinism: [parallel_for] splits the index range [\[0, n)] into
    contiguous chunks at fixed, width-and-grain-determined boundaries;
    each index is executed by exactly one domain. Kernels built on it
    write each output element from exactly one chunk, so results are
    bitwise identical across any domain count (no accumulation order
    ever crosses a chunk boundary). Which domain runs which chunk is
    scheduling-dependent; what each chunk computes is not.

    See [docs/PARALLELISM.md] for the pool lifecycle and grain policy. *)

(* ------------------------------------------------------------------ *)
(* Width configuration                                                 *)
(* ------------------------------------------------------------------ *)

let clamp_width n = Stdlib.max 1 n

let env_width () =
  match Sys.getenv_opt "NIMBLE_NUM_DOMAINS" with
  | None -> None
  | Some s -> Option.map clamp_width (int_of_string_opt (String.trim s))

(* Resolved lazily so [set_num_domains] / the env var can be applied
   before the first parallel region spawns anything. *)
let width_ref : int option ref = ref None

let num_domains () =
  match !width_ref with
  | Some w -> w
  | None ->
      let w =
        match env_width () with
        | Some n -> n
        | None -> clamp_width (Domain.recommended_domain_count () - 1)
      in
      width_ref := Some w;
      w

(* ------------------------------------------------------------------ *)
(* Counters (atomic: any domain — e.g. a serving-engine VM worker —    *)
(* may initiate a region, so increments must not lose updates)         *)
(* ------------------------------------------------------------------ *)

type snapshot = {
  sn_seq_runs : int;  (** [parallel_for] calls that ran sequentially *)
  sn_par_runs : int;  (** calls that fanned out over the pool *)
  sn_chunks : int;  (** total chunks executed across parallel runs *)
  sn_workers : int;  (** total participating domains, summed per run *)
}

let seq_runs_ctr = Atomic.make 0
let par_runs_ctr = Atomic.make 0
let chunks_ctr = Atomic.make 0
let workers_ctr = Atomic.make 0

let snapshot () =
  {
    sn_seq_runs = Atomic.get seq_runs_ctr;
    sn_par_runs = Atomic.get par_runs_ctr;
    sn_chunks = Atomic.get chunks_ctr;
    sn_workers = Atomic.get workers_ctr;
  }

let diff ~before ~after =
  {
    sn_seq_runs = after.sn_seq_runs - before.sn_seq_runs;
    sn_par_runs = after.sn_par_runs - before.sn_par_runs;
    sn_chunks = after.sn_chunks - before.sn_chunks;
    sn_workers = after.sn_workers - before.sn_workers;
  }

let reset_counters () =
  Atomic.set seq_runs_ctr 0;
  Atomic.set par_runs_ctr 0;
  Atomic.set chunks_ctr 0;
  Atomic.set workers_ctr 0

(* ------------------------------------------------------------------ *)
(* The domain pool                                                     *)
(* ------------------------------------------------------------------ *)

type job = {
  body : int -> int -> unit;  (** run the half-open index range lo..hi-1 *)
  bounds : int array;  (** chunk boundaries, length nchunks + 1 *)
  next : int Atomic.t;  (** next unclaimed chunk *)
  participants : int Atomic.t;  (** domains that claimed >= 1 chunk *)
  mutable completed : int;  (** chunks finished (under [mux]) *)
  mutable failed : exn option;  (** first exception raised by a chunk *)
}

let mux = Mutex.create ()
let cond_job = Condition.create ()
let cond_done = Condition.create ()
let current : job option ref = ref None
let generation = ref 0
let quitting = ref false
let workers : unit Domain.t array ref = ref [||]
let pool_spawned = ref false

(* Re-entrancy guard: a chunk body that itself calls [parallel_for]
   (e.g. a fused kernel composed of parallel primitives) must not post
   a nested job — the pool has one job slot — so nested regions run
   sequentially on whichever domain reached them. *)
let inside_region = Domain.DLS.new_key (fun () -> false)

let run_chunks (j : job) =
  let nchunks = Array.length j.bounds - 1 in
  let claimed = ref false in
  let continue_ = ref true in
  Domain.DLS.set inside_region true;
  while !continue_ do
    let c = Atomic.fetch_and_add j.next 1 in
    if c >= nchunks then continue_ := false
    else begin
      if not !claimed then begin
        claimed := true;
        Atomic.incr j.participants
      end;
      (try j.body j.bounds.(c) j.bounds.(c + 1)
       with e ->
         Mutex.lock mux;
         if j.failed = None then j.failed <- Some e;
         Mutex.unlock mux);
      Mutex.lock mux;
      j.completed <- j.completed + 1;
      if j.completed = nchunks then Condition.broadcast cond_done;
      Mutex.unlock mux
    end
  done;
  Domain.DLS.set inside_region false

let worker_main () =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock mux;
    while !generation = !seen && not !quitting do
      Condition.wait cond_job mux
    done;
    if !quitting then begin
      running := false;
      Mutex.unlock mux
    end
    else begin
      seen := !generation;
      match !current with
      | None -> Mutex.unlock mux
      | Some j ->
          Mutex.unlock mux;
          run_chunks j
    end
  done

let spawn_pool () =
  let n_workers = num_domains () - 1 in
  if n_workers > 0 then
    workers := Array.init n_workers (fun _ -> Domain.spawn worker_main);
  pool_spawned := true

(** Join every worker domain and forget the pool. Safe to call when no
    pool exists; a subsequent parallel region respawns lazily. *)
let shutdown () =
  if !pool_spawned then begin
    Mutex.lock mux;
    quitting := true;
    Condition.broadcast cond_job;
    Mutex.unlock mux;
    Array.iter Domain.join !workers;
    workers := [||];
    quitting := false;
    pool_spawned := false
  end

(** Reconfigure the pool width (joins any existing workers first).
    Values below 1 are clamped to 1. *)
let set_num_domains n =
  shutdown ();
  width_ref := Some (clamp_width n)

(* ------------------------------------------------------------------ *)
(* parallel_for                                                        *)
(* ------------------------------------------------------------------ *)

(** [run_sequential n body] is [body 0 n]: the escape hatch that takes
    the exact single-domain code path (also counted as a sequential
    run, so observability stays consistent). *)
let run_sequential n body =
  if n > 0 then body 0 n;
  Atomic.incr seq_runs_ctr

(** [pinned_sequential f] runs [f ()] with this domain's re-entrancy
    flag set, so every [parallel_for] it (transitively) performs takes
    the sequential path without touching the shared pool. The serving
    engine pins its VM workers this way when several of them run
    concurrently: request-level parallelism then owns the cores, and the
    single-job-slot kernel pool is never contended. Nests safely inside
    a real parallel region (the flag is already set there). *)
let pinned_sequential f =
  let was = Domain.DLS.get inside_region in
  Domain.DLS.set inside_region true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_region was) f

(** [parallel_for ~grain n body] runs [body lo hi] over a partition of
    [\[0, n)] into contiguous chunks of at least [grain] indices, using
    at most [num_domains ()] domains (the caller participates). Falls
    back to {!run_sequential} when the pool width is 1, when [n] is at
    most [grain], or when called from inside another parallel region. *)
let parallel_for ?(grain = 1) n body =
  let grain = Stdlib.max 1 grain in
  let width = num_domains () in
  let nchunks =
    if width <= 1 || Domain.DLS.get inside_region then 1
    else Stdlib.min width ((n + grain - 1) / grain)
  in
  if n <= 0 then ()
  else if nchunks <= 1 then run_sequential n body
  else begin
    if not !pool_spawned then spawn_pool ();
    (* Even split: chunk [c] covers [c*n/nchunks, (c+1)*n/nchunks). *)
    let bounds = Array.init (nchunks + 1) (fun c -> c * n / nchunks) in
    let j =
      {
        body;
        bounds;
        next = Atomic.make 0;
        participants = Atomic.make 0;
        completed = 0;
        failed = None;
      }
    in
    Mutex.lock mux;
    current := Some j;
    incr generation;
    Condition.broadcast cond_job;
    Mutex.unlock mux;
    run_chunks j;
    Mutex.lock mux;
    while j.completed < nchunks do
      Condition.wait cond_done mux
    done;
    current := None;
    Mutex.unlock mux;
    Atomic.incr par_runs_ctr;
    ignore (Atomic.fetch_and_add chunks_ctr nchunks);
    ignore (Atomic.fetch_and_add workers_ctr (Atomic.get j.participants));
    match j.failed with Some e -> raise e | None -> ()
  end

(** Grain that keeps roughly [min_work] scalar operations per chunk:
    [max 1 (min_work / work_per_item)]. The shared policy knob for
    kernels whose per-index cost varies with the other dimensions. *)
let grain_for ~work_per_item ~min_work =
  Stdlib.max 1 (min_work / Stdlib.max 1 work_per_item)

(** Default minimum per-chunk work (scalar ops) before a kernel fans
    out: small dynamic shapes — the common Nimble case — stay under it
    and run sequentially, paying zero synchronization cost. *)
let default_min_work = 16_384
