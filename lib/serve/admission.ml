(** SLO-aware admission control: shed work that provably cannot meet its
    deadline, at the door instead of after wasted execution.

    The controller keeps an exponentially-weighted moving average of
    observed per-request service time. At submission, the expected
    sojourn of a new request behind [queue_depth] queued ones across
    [workers] shards is

    {v  wait ~= (queue_depth / workers + 1) * ewma_service_us  v}

    and a request whose deadline budget is below [margin * wait] is
    refused with a [Shed] outcome — the engine never spends a worker on
    it, and the client learns immediately instead of at its deadline
    (admission math: [docs/SERVING.md]). Before any observation the
    estimate is zero and everything is admitted, so an idle server never
    sheds; decisions are deterministic given the observation sequence. *)

type config = {
  alpha : float;  (** EWMA smoothing factor, above 0 and at most 1; higher = jumpier *)
  margin : float;
      (** safety multiplier on the wait estimate; below 1.0 admits
          optimistically, above sheds conservatively *)
}

(** Smooth over ~10 recent requests, shed at 1x the estimate. *)
let default_config = { alpha = 0.2; margin = 1.0 }

type t = {
  cfg : config;
  mux : Mutex.t;
  mutable ewma_us : float;  (** 0 until the first observation *)
  mutable observations : int;
  mutable shed : int;
}

(** A controller with no observations (admits everything).
    @raise Invalid_argument on an alpha outside its range or a
    non-positive margin. *)
let create ?(config = default_config) () =
  if config.alpha <= 0.0 || config.alpha > 1.0 then
    Fmt.invalid_arg "Admission.create: alpha %g" config.alpha;
  if config.margin <= 0.0 then
    Fmt.invalid_arg "Admission.create: margin %g" config.margin;
  { cfg = config; mux = Mutex.create (); ewma_us = 0.0; observations = 0; shed = 0 }

let locked t f =
  Mutex.lock t.mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mux) f

(** Fold one completed request's service time (µs) into the EWMA. *)
let observe t ~service_us =
  if service_us >= 0.0 then
    locked t (fun () ->
        t.ewma_us <-
          (if t.observations = 0 then service_us
           else
             (t.cfg.alpha *. service_us)
             +. ((1.0 -. t.cfg.alpha) *. t.ewma_us));
        t.observations <- t.observations + 1)

(** Decide one submission: [true] = admit. [deadline_us] is the
    request's remaining budget ([None] = no deadline, always admitted);
    [queue_depth] the pending requests ahead of it; [workers] the shard
    pool draining that queue. *)
let admit t ~queue_depth ~workers ~deadline_us =
  match deadline_us with
  | None -> true
  | Some budget_us ->
      let est =
        locked t (fun () ->
            if t.observations = 0 then 0.0
            else
              (float_of_int queue_depth /. float_of_int (Stdlib.max 1 workers)
              +. 1.0)
              *. t.ewma_us)
      in
      let ok = budget_us >= t.cfg.margin *. est in
      if not ok then locked t (fun () -> t.shed <- t.shed + 1);
      ok

(** The current service-time estimate in µs (0 before any observation). *)
let estimate_us t = locked t (fun () -> t.ewma_us)

(** Completed-request observations folded in so far. *)
let observations t = locked t (fun () -> t.observations)

(** Submissions this controller has refused. *)
let shed t = locked t (fun () -> t.shed)

(** The controller's configuration (as given to {!create}). *)
let config t = t.cfg
