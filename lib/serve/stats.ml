(** Serving-engine statistics: admission counters, batch-size histogram,
    and a latency reservoir summarized as p50/p99.

    All recorders take the engine-wide mutex, so any domain (submitters,
    the batch former, VM workers) can report. [summary] freezes a
    consistent snapshot; [summary_to_json] renders the [server] section
    embedded in [nimble-profile/v1] documents (see
    [docs/OBSERVABILITY.md]). *)

type t = {
  mux : Mutex.t;
  mutable submitted : int;
  mutable completed : int;
  mutable rejected : int;  (** refused at admission (queue full) *)
  mutable shed_admission : int;
      (** refused at admission by SLO control: the deadline provably
          could not be met, so the request never entered the queue *)
  mutable shed_flush : int;
      (** deadline passed while stashed in the batch former; shed at
          flush without ever reaching a worker *)
  mutable timeouts : int;
      (** deadline passed between flush and worker pickup; the request
          reached a worker but was not executed *)
  mutable errors : int;  (** VM faults surfaced to the client *)
  mutable batches : int;
  mutable queue_depth_hwm : int;
  batch_hist : (int, int) Hashtbl.t;  (** batch size -> count *)
  mutable latencies_us : float array;  (** submit-to-complete, growable *)
  mutable n_latencies : int;
  mutable frame_reuses : int;  (** VM register-frame reuses across workers *)
  mutable arena_hits : int;  (** storage-pool hits across workers *)
  mutable allocs : int;  (** storage allocations performed across workers *)
  mutable arena_reuses : int;
      (** symbolic-plan arena rebinds (persistent arena reused instead of
          allocated) across workers *)
  mutable retries : int;  (** transient failures retried by workers *)
  mutable worker_restarts : int;  (** worker domains resurrected after dying *)
  failure_kinds : (string, int) Hashtbl.t;
      (** typed-failure kind name -> count (subset sum of [errors]) *)
}

let create () =
  {
    mux = Mutex.create ();
    submitted = 0;
    completed = 0;
    rejected = 0;
    shed_admission = 0;
    shed_flush = 0;
    timeouts = 0;
    errors = 0;
    batches = 0;
    queue_depth_hwm = 0;
    batch_hist = Hashtbl.create 8;
    latencies_us = Array.make 1024 0.0;
    n_latencies = 0;
    frame_reuses = 0;
    arena_hits = 0;
    allocs = 0;
    arena_reuses = 0;
    retries = 0;
    worker_restarts = 0;
    failure_kinds = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mux) f

let record_submit t = locked t (fun () -> t.submitted <- t.submitted + 1)
let record_reject t = locked t (fun () -> t.rejected <- t.rejected + 1)
let record_timeout t = locked t (fun () -> t.timeouts <- t.timeouts + 1)

(** One request refused by SLO-aware admission control (deadline
    provably unmeetable; never queued). *)
let record_shed_admission t =
  locked t (fun () -> t.shed_admission <- t.shed_admission + 1)

(** One request whose deadline passed while stashed in the batch former,
    shed at flush time (never reached a worker). *)
let record_shed_flush t =
  locked t (fun () -> t.shed_flush <- t.shed_flush + 1)
let record_error t = locked t (fun () -> t.errors <- t.errors + 1)
let record_retry t = locked t (fun () -> t.retries <- t.retries + 1)

let record_worker_restart t =
  locked t (fun () -> t.worker_restarts <- t.worker_restarts + 1)

(** One request completed with [Error (Failed _)]: bumps [errors] and the
    per-kind tally ([kind] is [Interp.kind_name] of the failure). *)
let record_failure t ~kind =
  locked t (fun () ->
      t.errors <- t.errors + 1;
      Hashtbl.replace t.failure_kinds kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.failure_kinds kind)))

(** One completed request with its submit-to-complete latency. *)
let record_complete t ~latency_us =
  locked t (fun () ->
      t.completed <- t.completed + 1;
      if t.n_latencies = Array.length t.latencies_us then begin
        let bigger = Array.make (2 * t.n_latencies) 0.0 in
        Array.blit t.latencies_us 0 bigger 0 t.n_latencies;
        t.latencies_us <- bigger
      end;
      t.latencies_us.(t.n_latencies) <- latency_us;
      t.n_latencies <- t.n_latencies + 1)

(** One formed batch of [size] requests. *)
let record_batch t ~size =
  locked t (fun () ->
      t.batches <- t.batches + 1;
      Hashtbl.replace t.batch_hist size
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.batch_hist size)))

(** Fold the submission queue's high-water mark into the stats. *)
let observe_queue_depth t depth =
  locked t (fun () -> t.queue_depth_hwm <- Stdlib.max t.queue_depth_hwm depth)

(** Accumulate a worker's per-batch VM reuse counters: frame reuses,
    pool hits, storage allocations performed, and symbolic-plan arena
    rebinds (all deltas over the batch). *)
let record_reuse t ~frame_reuses ~arena_hits ~allocs ~arena_reuses =
  locked t (fun () ->
      t.frame_reuses <- t.frame_reuses + frame_reuses;
      t.arena_hits <- t.arena_hits + arena_hits;
      t.allocs <- t.allocs + allocs;
      t.arena_reuses <- t.arena_reuses + arena_reuses)

(* ------------------------------ summary ------------------------------ *)

type summary = {
  s_submitted : int;
  s_completed : int;
  s_rejected : int;
  s_shed_admission : int;
  s_shed_flush : int;
  s_timeouts : int;
  s_errors : int;
  s_batches : int;
  s_queue_depth_hwm : int;
  s_batch_hist : (int * int) list;  (** (size, count), ascending size *)
  s_mean_batch : float;
  s_p50_ms : float;  (** 0 when nothing completed *)
  s_p99_ms : float;
  s_mean_ms : float;
  s_frame_reuses : int;
  s_arena_hits : int;
  s_allocs_per_request : float;  (** storage allocations / completed request *)
  s_arena_reuses : int;  (** symbolic-plan arena rebinds across workers *)
  s_retries : int;
  s_worker_restarts : int;
  s_failure_kinds : (string * int) list;  (** (kind, count), sorted by kind *)
}

let percentile sorted n p =
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(Stdlib.max 0 (Stdlib.min (n - 1) idx))

(** Freeze a consistent snapshot (percentiles computed here, not online). *)
let summary t : summary =
  locked t (fun () ->
      let n = t.n_latencies in
      let sorted = Array.sub t.latencies_us 0 n in
      Array.sort Float.compare sorted;
      let hist =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.batch_hist [])
      in
      let batched = List.fold_left (fun acc (s, c) -> acc + (s * c)) 0 hist in
      let mean_lat =
        if n = 0 then 0.0
        else Array.fold_left ( +. ) 0.0 sorted /. float_of_int n
      in
      {
        s_submitted = t.submitted;
        s_completed = t.completed;
        s_rejected = t.rejected;
        s_shed_admission = t.shed_admission;
        s_shed_flush = t.shed_flush;
        s_timeouts = t.timeouts;
        s_errors = t.errors;
        s_batches = t.batches;
        s_queue_depth_hwm = t.queue_depth_hwm;
        s_batch_hist = hist;
        s_mean_batch =
          (if t.batches = 0 then 0.0
           else float_of_int batched /. float_of_int t.batches);
        s_p50_ms = percentile sorted n 0.50 /. 1e3;
        s_p99_ms = percentile sorted n 0.99 /. 1e3;
        s_mean_ms = mean_lat /. 1e3;
        s_frame_reuses = t.frame_reuses;
        s_arena_hits = t.arena_hits;
        s_allocs_per_request =
          float_of_int t.allocs /. float_of_int (Stdlib.max 1 t.completed);
        s_arena_reuses = t.arena_reuses;
        s_retries = t.retries;
        s_worker_restarts = t.worker_restarts;
        s_failure_kinds =
          List.sort
            (fun (a, _) (b, _) -> String.compare a b)
            (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.failure_kinds []);
      })

(** The [server] JSON section ([nimble-profile/v1]; see
    [docs/OBSERVABILITY.md]). *)
let summary_to_json (s : summary) : Nimble_vm.Json.t =
  let open Nimble_vm.Json in
  Obj
    [
      ("submitted", Int s.s_submitted);
      ("completed", Int s.s_completed);
      ("rejected", Int s.s_rejected);
      ("shed_admission", Int s.s_shed_admission);
      ("shed_flush", Int s.s_shed_flush);
      ("timeouts", Int s.s_timeouts);
      ("errors", Int s.s_errors);
      ("batches", Int s.s_batches);
      ("queue_depth_hwm", Int s.s_queue_depth_hwm);
      ( "batch_hist",
        Obj (List.map (fun (k, v) -> (string_of_int k, Int v)) s.s_batch_hist) );
      ("mean_batch", Float s.s_mean_batch);
      ("p50_ms", Float s.s_p50_ms);
      ("p99_ms", Float s.s_p99_ms);
      ("mean_ms", Float s.s_mean_ms);
      ("frame_reuses", Int s.s_frame_reuses);
      ("arena_hits", Int s.s_arena_hits);
      ("allocs_per_request", Float s.s_allocs_per_request);
      ("arena_reuses", Int s.s_arena_reuses);
      ("retries", Int s.s_retries);
      ("worker_restarts", Int s.s_worker_restarts);
      ( "failure_kinds",
        Obj (List.map (fun (k, v) -> (k, Int v)) s.s_failure_kinds) );
    ]

let pp_summary ppf (s : summary) =
  Fmt.pf ppf
    "@[<v>submitted %d  completed %d  rejected %d  shed %d+%d  timeouts %d  \
     errors %d@,\
     batches %d (mean size %.2f)  queue hwm %d@,\
     latency ms: p50 %.3f  p99 %.3f  mean %.3f@,\
     warm state: frame reuses %d, arena hits %d, arena rebinds %d, \
     allocs/request %.3f@,\
     resilience: retries %d, worker restarts %d%a@]"
    s.s_submitted s.s_completed s.s_rejected s.s_shed_admission s.s_shed_flush
    s.s_timeouts s.s_errors s.s_batches
    s.s_mean_batch s.s_queue_depth_hwm s.s_p50_ms s.s_p99_ms s.s_mean_ms
    s.s_frame_reuses s.s_arena_hits s.s_arena_reuses s.s_allocs_per_request
    s.s_retries s.s_worker_restarts
    (fun ppf kinds ->
      if kinds <> [] then
        Fmt.pf ppf ", failures:%a"
          (fun ppf -> List.iter (fun (k, v) -> Fmt.pf ppf " %s=%d" k v))
          kinds)
    s.s_failure_kinds
