(** Shape buckets: the grouping key of the dynamic batcher.

    Bucketing decides which requests share a batch (and therefore a
    worker's warm arenas and register frame); it never changes numerics,
    because every kernel still runs at the request's exact runtime shape.
    See [docs/SERVING.md] for the policy discussion. *)

type policy =
  | Exact  (** one bucket per distinct shape *)
  | Pad of {
      multiple : int;  (** round every dimension up to this multiple *)
      max_over : float;
          (** fall back to the exact shape when padding would grow the
              element count by more than this factor *)
    }

(** The [Pad] rounding multiple used by {!default} (8). *)
val default_multiple : int

(** [Pad { multiple = 8; max_over = 2.0 }]. *)
val default : policy

(** The bucket shape for the given dims (a fresh array). *)
val key : policy -> int array -> int array

(** {!key} rendered as a stable ["8x64"]-style string — the batch
    former's hashtable key and the label in stats and trace spans. *)
val key_string : policy -> int array -> string

(** Human-readable policy description (CLI banners, docs). *)
val pp_policy : Format.formatter -> policy -> unit
