(** Warm executable cache: compile once per model; cold loads take the
    serialize → deserialize → relink deployment path, warm loads return
    the cached linked executable (safe to share across VM workers — an
    executable is immutable after linking). *)

type t

(** An empty cache (no compiled entries, zeroed hit/miss counters). *)
val create : unit -> t

(** The linked executable for [name]; [build] is compiled and
    round-tripped on the first request only. The decoded executable is
    bytecode-verified before linking
    ([Nimble_analysis.Verifier.of_bytes]), so a corrupt artifact raises
    [Nimble_analysis.Verifier.Verify_error] here instead of reaching a
    worker VM. Transient injected faults at the ["deserialize"] point
    are retried a bounded number of times (a loader should survive a
    flaky artifact read); persistent ones propagate.
    @param options compiler options for the cold build; ignored on warm
    hits. *)
val load :
  ?options:Nimble_compiler.Nimble.options ->
  t -> name:string -> build:(unit -> Nimble_ir.Irmod.t) -> Nimble_vm.Exe.t

(** Replay the executable's persisted tune table (the NMBLEXE4 section)
    into the live dispatch tables via
    {!Nimble_codegen.Dispatch.install_tuned}, so a warm restart serves
    pre-specialized without re-tuning. Decisions naming kernels with no
    registered dispatcher are ignored. Returns how many decisions were
    applied. {!load} calls this automatically after relinking. *)
val apply_tunes : Nimble_vm.Exe.t -> int

(** Capture the live dispatch tables' installed tune decisions into the
    executable's tune table so the next {!Nimble_vm.Serialize.to_bytes}
    persists them — the checkpoint half of the warm-restart loop.
    Returns how many decisions were persisted. *)
val persist_tunes : Nimble_vm.Exe.t -> int

(** Warm loads served since creation. *)
val hits : t -> int

(** Cold loads (compile + round trip) performed since creation. *)
val misses : t -> int

(** Serialized size in bytes of a cached model, if present. *)
val serialized_bytes : t -> name:string -> int option

(** Capture a linked executable's packed implementations into the link
    registry that {!restore} relinks from ({!load} populates it
    automatically). Returns how many implementations were registered. *)
val register_impls : t -> Nimble_vm.Exe.t -> int

(** The snapshot manifest's [schema] member: ["nimble-snapshot/v1"]. *)
val snapshot_schema : string

(** Checkpoint every cached model to [dir]: persist live tune decisions,
    serialize each executable to [gen-N/<name>.nmblexe] — each snapshot
    gets a fresh generation subdirectory — and record the set (with the
    given per-model [hints] arena-bound dims, and the generation number)
    in a versioned top-level [MANIFEST.json]. Every file is temp-written
    and renamed, the manifest last, so the manifest rename is the commit
    point: a crash mid-snapshot leaves the previous generation fully
    intact and referenced. After the commit, generations older than the
    newest [keep] (default 2: current + one rollback) are
    garbage-collected best-effort. All I/O passes the ["snapshot_io"]
    fault point (transient faults retried, persistent propagate).
    Returns how many models were written.
    @raise Invalid_argument when [keep < 1]. *)
val snapshot :
  ?hints:(string * int array list) list -> ?keep:int -> t -> dir:string -> int

(** Generation numbers currently present under [dir] (unsorted); the
    manifest always references the highest one that was committed. *)
val generations : dir:string -> int list

(** One model brought back by {!restore}. *)
type restored = {
  r_name : string;
  r_exe : Nimble_vm.Exe.t;  (** decoded, verified, relinked, tunes applied *)
  r_bytes : int;  (** on-disk serialized size *)
  r_tunes_applied : int;  (** tune decisions replayed into dispatch *)
  r_arena_hints : int array list;
      (** arena-bound dims recorded at snapshot time — feed these to the
          engine's [warm_hints] to pre-warm arenas before traffic *)
}

(** Warm-restart every model in [dir]'s manifest: decode each
    [.nmblexe] (bytecode-verified; transient ["snapshot_io"] and
    ["deserialize"] faults retried), relink packed functions from the
    in-process link registry without recompiling, replay the persisted
    tune table, and replace the cache entries. The registry must already
    hold every implementation the snapshot names (populate via {!load}
    or {!register_impls}).
    @raise Failure on a missing or ill-versioned manifest, or an
    implementation absent from the registry. *)
val restore : t -> dir:string -> restored list
