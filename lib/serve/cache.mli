(** Warm executable cache: compile once per model; cold loads take the
    serialize → deserialize → relink deployment path, warm loads return
    the cached linked executable (safe to share across VM workers — an
    executable is immutable after linking). *)

type t

(** An empty cache (no compiled entries, zeroed hit/miss counters). *)
val create : unit -> t

(** The linked executable for [name]; [build] is compiled and
    round-tripped on the first request only. The decoded executable is
    bytecode-verified before linking
    ([Nimble_analysis.Verifier.of_bytes]), so a corrupt artifact raises
    [Nimble_analysis.Verifier.Verify_error] here instead of reaching a
    worker VM. Transient injected faults at the ["deserialize"] point
    are retried a bounded number of times (a loader should survive a
    flaky artifact read); persistent ones propagate.
    @param options compiler options for the cold build; ignored on warm
    hits. *)
val load :
  ?options:Nimble_compiler.Nimble.options ->
  t -> name:string -> build:(unit -> Nimble_ir.Irmod.t) -> Nimble_vm.Exe.t

(** Replay the executable's persisted tune table (the NMBLEXE4 section)
    into the live dispatch tables via
    {!Nimble_codegen.Dispatch.install_tuned}, so a warm restart serves
    pre-specialized without re-tuning. Decisions naming kernels with no
    registered dispatcher are ignored. Returns how many decisions were
    applied. {!load} calls this automatically after relinking. *)
val apply_tunes : Nimble_vm.Exe.t -> int

(** Capture the live dispatch tables' installed tune decisions into the
    executable's tune table so the next {!Nimble_vm.Serialize.to_bytes}
    persists them — the checkpoint half of the warm-restart loop.
    Returns how many decisions were persisted. *)
val persist_tunes : Nimble_vm.Exe.t -> int

(** Warm loads served since creation. *)
val hits : t -> int

(** Cold loads (compile + round trip) performed since creation. *)
val misses : t -> int

(** Serialized size in bytes of a cached model, if present. *)
val serialized_bytes : t -> name:string -> int option
