(** Per-(model, bucket) circuit breaker: Closed / Open / HalfOpen.

    The breaker watches a sliding window of request outcomes and cuts a
    (model, bucket) lane off before a failing shard burns worker time on
    requests that will fail anyway:

    {v
                 failure rate over full window >= threshold
        Closed ---------------------------------------------> Open
          ^                                                    |
          | every HalfOpen probe succeeded                     | cooldown
          |                                                    | admissions shed
        HalfOpen <---------------------------------------------+
          |   ^
          +---+--- any probe fails (or an injected breaker_probe
                   fault refuses the trial) -> back to Open
    v}

    Every transition is a pure function of the order of {!admit} /
    {!record} calls — there is no wall clock anywhere — so a chaos test
    with a fixed {!Nimble_fault.Fault} seed replays the exact state
    sequence. The Open cooldown counts {e shed admissions} (not
    seconds): after [cooldown] requests have bounced off the open
    breaker, the next one is allowed through as a HalfOpen probe. In
    HalfOpen at most [probes] requests are in flight; each probe passes
    the ["breaker_probe"] fault point, so injected chaos can refuse the
    trial itself (counted as a probe failure). All [probes] must succeed
    to re-close; one failure re-opens (and re-arms the cooldown). *)

module Fault = Nimble_fault.Fault

type state = Closed | Open | Half_open

type config = {
  window : int;  (** sliding outcome window (requests) in Closed *)
  failure_threshold : float;
      (** trip when the window is full and its failure fraction reaches
          this *)
  cooldown : int;  (** admissions shed while Open before probing *)
  probes : int;  (** HalfOpen trial budget; all must succeed to close *)
}

(** Window of 16, trip at half failing, probe after 8 shed, 2 probes. *)
let default_config =
  { window = 16; failure_threshold = 0.5; cooldown = 8; probes = 2 }

type t = {
  cfg : config;
  mux : Mutex.t;
  ring : bool array;  (** outcome window; [true] = failure *)
  mutable ring_n : int;  (** outcomes recorded (saturates at window) *)
  mutable ring_at : int;  (** next write position *)
  mutable st : state;
  mutable shed_count : int;  (** admissions shed this Open period *)
  mutable probes_inflight : int;
  mutable probe_successes : int;
  (* cumulative counters for stats *)
  mutable trips : int;  (** Closed|HalfOpen -> Open transitions *)
  mutable total_shed : int;
  mutable reopens : int;  (** HalfOpen -> Open transitions (subset of trips) *)
  mutable closes : int;  (** HalfOpen -> Closed transitions *)
}

(** A fresh breaker in [Closed] with an empty outcome window.
    @raise Invalid_argument on a non-positive window, cooldown or probe
    budget, or a threshold that is not above 0 and at most 1. *)
let create ?(config = default_config) () =
  if config.window < 1 then Fmt.invalid_arg "Breaker.create: window %d" config.window;
  if config.cooldown < 1 then
    Fmt.invalid_arg "Breaker.create: cooldown %d" config.cooldown;
  if config.probes < 1 then Fmt.invalid_arg "Breaker.create: probes %d" config.probes;
  if config.failure_threshold <= 0.0 || config.failure_threshold > 1.0 then
    Fmt.invalid_arg "Breaker.create: failure_threshold %g" config.failure_threshold;
  {
    cfg = config;
    mux = Mutex.create ();
    ring = Array.make config.window false;
    ring_n = 0;
    ring_at = 0;
    st = Closed;
    shed_count = 0;
    probes_inflight = 0;
    probe_successes = 0;
    trips = 0;
    total_shed = 0;
    reopens = 0;
    closes = 0;
  }

let locked t f =
  Mutex.lock t.mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mux) f

let reset_window t =
  Array.fill t.ring 0 (Array.length t.ring) false;
  t.ring_n <- 0;
  t.ring_at <- 0

let trip t =
  (match t.st with Half_open -> t.reopens <- t.reopens + 1 | _ -> ());
  t.st <- Open;
  t.trips <- t.trips + 1;
  t.shed_count <- 0;
  t.probes_inflight <- 0;
  t.probe_successes <- 0;
  reset_window t

(** An {!admit} decision: run the request normally, run it as a HalfOpen
    trial (complete it with {!record} [~probe:true]), or shed it. *)
type decision = Allow | Probe | Shed

(** Ask the breaker whether to admit one request. [Shed] costs nothing
    and advances the Open cooldown; [Probe] means the caller must
    {!record} the outcome with [~probe:true]. An injected
    ["breaker_probe"] fault refuses the trial dispatch itself: the
    breaker counts it as a failed probe (re-opening) and the caller sees
    [Shed]. *)
let admit t : decision =
  locked t (fun () ->
      match t.st with
      | Closed -> Allow
      | Open ->
          if t.shed_count >= t.cfg.cooldown then begin
            (* cooldown spent: next admission becomes the first probe *)
            t.st <- Half_open;
            t.probes_inflight <- 0;
            t.probe_successes <- 0;
            match Fault.check "breaker_probe" with
            | () ->
                t.probes_inflight <- t.probes_inflight + 1;
                Probe
            | exception Fault.Injected _ ->
                (* the probe dispatch itself faulted: treat as a failed
                   trial — back to Open, cooldown re-armed *)
                trip t;
                t.total_shed <- t.total_shed + 1;
                Shed
          end
          else begin
            t.shed_count <- t.shed_count + 1;
            t.total_shed <- t.total_shed + 1;
            Shed
          end
      | Half_open ->
          if t.probes_inflight < t.cfg.probes then (
            match Fault.check "breaker_probe" with
            | () ->
                t.probes_inflight <- t.probes_inflight + 1;
                Probe
            | exception Fault.Injected _ ->
                trip t;
                t.total_shed <- t.total_shed + 1;
                Shed)
          else begin
            t.total_shed <- t.total_shed + 1;
            Shed
          end)

(** Record one admitted request's outcome. In [Closed], failures
    accumulate in the window and can trip the breaker. With
    [~probe:true] (a {!decision} of [Probe]), a failure re-opens
    immediately; once all [probes] trials have succeeded the breaker
    closes with a fresh window. *)
let record ?(probe = false) t ~ok =
  locked t (fun () ->
      match t.st with
      | Open -> () (* a straggler from before the trip; nothing to learn *)
      | Half_open when probe ->
          if not ok then trip t
          else begin
            t.probe_successes <- t.probe_successes + 1;
            if t.probe_successes >= t.cfg.probes then begin
              t.st <- Closed;
              t.closes <- t.closes + 1;
              t.probes_inflight <- 0;
              t.probe_successes <- 0;
              reset_window t
            end
          end
      | Half_open -> () (* non-probe straggler *)
      | Closed ->
          t.ring.(t.ring_at) <- not ok;
          t.ring_at <- (t.ring_at + 1) mod t.cfg.window;
          if t.ring_n < t.cfg.window then t.ring_n <- t.ring_n + 1;
          if t.ring_n >= t.cfg.window then begin
            let failures =
              Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 t.ring
            in
            if
              float_of_int failures /. float_of_int t.cfg.window
              >= t.cfg.failure_threshold
            then trip t
          end)

(** The current state (racy under concurrency; exact in seeded tests). *)
let state t = locked t (fun () -> t.st)

(** Cumulative counters for stats and the fleet bench. *)
type counters = {
  c_trips : int;  (** transitions into Open (includes re-opens) *)
  c_shed : int;  (** admissions shed while Open / over probe budget *)
  c_reopens : int;  (** HalfOpen probes that failed and re-opened *)
  c_closes : int;  (** successful HalfOpen -> Closed recoveries *)
}

(** Snapshot the cumulative trip/shed/reopen/close counters. *)
let counters t =
  locked t (fun () ->
      {
        c_trips = t.trips;
        c_shed = t.total_shed;
        c_reopens = t.reopens;
        c_closes = t.closes;
      })

(** The breaker's configuration (as given to {!create}). *)
let config t = t.cfg

(** Render a {!state} as ["closed"] / ["open"] / ["half_open"]. *)
let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"
