(** Synthetic load generator: open-loop arrivals against an {!Engine}.

    Each client domain draws shapes from a weighted mix and submits at
    its share of the aggregate rate with seeded-deterministic
    inter-arrival gaps (Poisson by default), without waiting for
    responses in line — an open-loop generator, so queueing delay shows
    up as latency instead of silently throttling the offered load.
    Rejected submissions (backpressure) are counted and dropped, as a
    real client-facing load balancer would. After the generation window
    every outstanding ticket is awaited, so the returned statistics
    cover completed work only. *)

module Rng = Nimble_tensor.Rng

type mix = (int array * float) list

type process = Poisson  (** exponential inter-arrival gaps *) | Steady  (** fixed gaps *)

type config = {
  rate_rps : float;  (** aggregate offered arrival rate, all clients *)
  duration_s : float;  (** generation window (drain time is extra) *)
  clients : int;  (** submitting domains, each at [rate_rps / clients] *)
  mix : mix;  (** weighted shape distribution *)
  process : process;
  seed : int;  (** arrival and mix draws are deterministic per seed *)
  timeout_us : float option;  (** per-request deadline passed to submit *)
}

let default_config =
  {
    rate_rps = 200.0;
    duration_s = 1.0;
    clients = 2;
    mix = [ ([| 8 |], 1.0) ];
    process = Poisson;
    seed = 42;
    timeout_us = None;
  }

type result = {
  offered : int;  (** submission attempts across all clients *)
  wall_s : float;  (** generation window + drain, wall clock *)
  achieved_rps : float;  (** completed requests / [wall_s] *)
  summary : Stats.summary;  (** the engine's cumulative statistics *)
}

let client_main cfg engine ~make_input ~client_id () =
  let rng = Rng.create ~seed:(cfg.seed + (7919 * client_id)) in
  let weights = Array.of_list (List.map snd cfg.mix) in
  let shapes = Array.of_list (List.map fst cfg.mix) in
  let mean_gap_s = float_of_int cfg.clients /. Float.max 1e-6 cfg.rate_rps in
  let deadline = Unix.gettimeofday () +. cfg.duration_s in
  let offered = ref 0 in
  let tickets = ref [] in
  while Unix.gettimeofday () < deadline do
    let shape = shapes.(Rng.categorical rng weights) in
    incr offered;
    (match Engine.submit ?timeout_us:cfg.timeout_us engine ~shape (make_input ~shape) with
    | Ok tk -> tickets := tk :: !tickets
    | Error _ -> () (* rejects are already counted by the engine *));
    let gap =
      match cfg.process with
      | Steady -> mean_gap_s
      | Poisson -> -.mean_gap_s *. log (Float.max 1e-12 (1.0 -. Rng.float rng))
    in
    if gap > 0.0 then Unix.sleepf gap
  done;
  (* drain: wait for everything this client still has in flight *)
  List.iter (fun tk -> ignore (Engine.wait tk)) !tickets;
  !offered

(** Drive [engine] per [config]; [make_input] builds the VM argument for
    a drawn shape (called on the client domain at submit time). Engine
    statistics are cumulative, so use a fresh engine per measurement
    point. *)
let run ?(config = default_config) engine ~(make_input : shape:int array -> Nimble_vm.Obj.t) : result =
  if config.clients < 1 then Fmt.invalid_arg "Loadgen.run: clients %d" config.clients;
  if config.mix = [] then Fmt.invalid_arg "Loadgen.run: empty mix";
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init config.clients (fun i ->
        Domain.spawn (client_main config engine ~make_input ~client_id:i))
  in
  let offered = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  let summary = Engine.stats engine in
  {
    offered;
    wall_s;
    achieved_rps =
      (if wall_s > 0.0 then float_of_int summary.Stats.s_completed /. wall_s else 0.0);
    summary;
  }
