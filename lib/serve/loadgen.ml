(** Synthetic load generator: open-loop arrivals against an {!Engine}
    or a whole {!Fleet}.

    Each client domain draws shapes from a weighted mix and submits at
    its share of the aggregate rate with seeded-deterministic
    inter-arrival gaps (Poisson by default; bursty and diurnal variants
    for multi-tenant realism), without waiting for responses in line —
    an open-loop generator, so queueing delay shows up as latency
    instead of silently throttling the offered load. Rejected
    submissions (backpressure) are counted and dropped, as a real
    client-facing load balancer would. After the generation window every
    outstanding ticket is awaited, so the returned statistics cover
    completed work only. *)

module Rng = Nimble_tensor.Rng

type mix = (int array * float) list

(** Validate a weighted distribution before any client domain divides by
    its weight sum: non-empty, no negative weight, positive total.
    @raise Invalid_argument (one-line message) otherwise — the CLI turns
    this into an exit-1 diagnostic instead of a division crash. *)
let validate_mix ~what (weights : float list) =
  if weights = [] then Fmt.invalid_arg "Loadgen: empty %s" what;
  List.iter
    (fun w ->
      if w < 0.0 then Fmt.invalid_arg "Loadgen: negative weight %g in %s" w what)
    weights;
  if List.fold_left ( +. ) 0.0 weights <= 0.0 then
    Fmt.invalid_arg "Loadgen: %s weights sum to zero" what

type process =
  | Poisson  (** exponential inter-arrival gaps *)
  | Steady  (** fixed gaps *)
  | Bursty of { burst : int }
      (** [burst] back-to-back arrivals, then one exponential gap scaled
          by the burst size (same aggregate rate, spikier queueing) *)
  | Diurnal of { cycles : float; depth : float }
      (** Poisson whose instantaneous rate swings sinusoidally by
          [±depth] over [cycles] periods of the generation window — a
          compressed day/night traffic curve *)

type config = {
  rate_rps : float;  (** aggregate offered arrival rate, all clients *)
  duration_s : float;  (** generation window (drain time is extra) *)
  clients : int;  (** submitting domains, each at [rate_rps / clients] *)
  mix : mix;  (** weighted shape distribution *)
  process : process;
  seed : int;  (** arrival and mix draws are deterministic per seed *)
  timeout_us : float option;  (** per-request deadline passed to submit *)
}

let default_config =
  {
    rate_rps = 200.0;
    duration_s = 1.0;
    clients = 2;
    mix = [ ([| 8 |], 1.0) ];
    process = Poisson;
    seed = 42;
    timeout_us = None;
  }

type result = {
  offered : int;  (** submission attempts across all clients *)
  wall_s : float;  (** generation window + drain, wall clock *)
  achieved_rps : float;  (** completed requests / [wall_s] *)
  summary : Stats.summary;  (** the engine's cumulative statistics *)
}

(** Next inter-arrival gap (seconds) for one client. [elapsed_frac] is
    the position inside the generation window in [0, 1] (drives the
    diurnal modulation); [pending_burst] carries burst state across
    calls. *)
let next_gap rng process ~mean_gap_s ~elapsed_frac ~pending_burst =
  match process with
  | Steady -> mean_gap_s
  | Poisson -> -.mean_gap_s *. log (Float.max 1e-12 (1.0 -. Rng.float rng))
  | Bursty { burst } ->
      let burst = Stdlib.max 1 burst in
      if !pending_burst > 0 then begin
        decr pending_burst;
        0.0
      end
      else begin
        pending_burst := burst - 1;
        -.(mean_gap_s *. float_of_int burst)
        *. log (Float.max 1e-12 (1.0 -. Rng.float rng))
      end
  | Diurnal { cycles; depth } ->
      let depth = Float.max 0.0 (Float.min 0.95 depth) in
      let modulation =
        1.0 +. (depth *. sin (2.0 *. Float.pi *. cycles *. elapsed_frac))
      in
      -.(mean_gap_s /. Float.max 0.05 modulation)
      *. log (Float.max 1e-12 (1.0 -. Rng.float rng))

let client_main cfg engine ~make_input ~client_id () =
  let rng = Rng.create ~seed:(cfg.seed + (7919 * client_id)) in
  let weights = Array.of_list (List.map snd cfg.mix) in
  let shapes = Array.of_list (List.map fst cfg.mix) in
  let mean_gap_s = float_of_int cfg.clients /. Float.max 1e-6 cfg.rate_rps in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.duration_s in
  let offered = ref 0 in
  let tickets = ref [] in
  let pending_burst = ref 0 in
  while Unix.gettimeofday () < deadline do
    let shape = shapes.(Rng.categorical rng weights) in
    incr offered;
    (match Engine.submit ?timeout_us:cfg.timeout_us engine ~shape (make_input ~shape) with
    | Ok tk -> tickets := tk :: !tickets
    | Error _ -> () (* rejects are already counted by the engine *));
    let elapsed_frac =
      Float.max 0.0
        (Float.min 1.0 ((Unix.gettimeofday () -. t0) /. Float.max 1e-6 cfg.duration_s))
    in
    let gap = next_gap rng cfg.process ~mean_gap_s ~elapsed_frac ~pending_burst in
    if gap > 0.0 then Unix.sleepf gap
  done;
  (* drain: wait for everything this client still has in flight *)
  List.iter (fun tk -> ignore (Engine.wait tk)) !tickets;
  !offered

(** Drive [engine] per [config]; [make_input] builds the VM argument for
    a drawn shape (called on the client domain at submit time). Engine
    statistics are cumulative, so use a fresh engine per measurement
    point. *)
let run ?(config = default_config) engine ~(make_input : shape:int array -> Nimble_vm.Obj.t) : result =
  if config.clients < 1 then Fmt.invalid_arg "Loadgen.run: clients %d" config.clients;
  validate_mix ~what:"mix" (List.map snd config.mix);
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init config.clients (fun i ->
        Domain.spawn (client_main config engine ~make_input ~client_id:i))
  in
  let offered = List.fold_left (fun acc d -> acc + Domain.join d) 0 domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  let summary = Engine.stats engine in
  {
    offered;
    wall_s;
    achieved_rps =
      (if wall_s > 0.0 then float_of_int summary.Stats.s_completed /. wall_s else 0.0);
    summary;
  }

(* --------------------------- fleet driver --------------------------- *)

(** One tenant of a multi-tenant run: which model it hits, its share of
    the aggregate arrivals, and its own shape mix and deadline. *)
type tenant = {
  tn_model : string;
  tn_share : float;  (** fraction of aggregate arrivals (relative weight) *)
  tn_mix : mix;
  tn_timeout_us : float option;
}

(** Client-side outcome tallies of a fleet run. The engines' own stats
    never see breaker sheds (an open lane refuses before the engine), so
    the fleet driver counts outcomes where the client observes them. *)
type fleet_result = {
  f_offered : int;  (** submission attempts across all clients *)
  f_wall_s : float;  (** generation window + drain, wall clock *)
  f_ok : int;  (** requests completed with [Ok] *)
  f_failed : int;  (** [Error (Failed _)] — VM failures *)
  f_timed_out : int;  (** [Error Timed_out] *)
  f_rejected : int;  (** [Error Rejected] — queue full *)
  f_shed : int;  (** [Error Shed] — SLO admission refusals *)
  f_tripped : int;  (** [Error Tripped] — breaker refusals *)
  f_summaries : (string * Stats.summary) list;  (** per-model engine stats *)
}

type tally = {
  mutable y_offered : int;
  mutable y_ok : int;
  mutable y_failed : int;
  mutable y_timed_out : int;
  mutable y_rejected : int;
  mutable y_shed : int;
  mutable y_tripped : int;
}

let tally_outcome y (o : Engine.outcome) =
  match o with
  | Ok _ -> y.y_ok <- y.y_ok + 1
  | Error (Engine.Failed _) -> y.y_failed <- y.y_failed + 1
  | Error Engine.Timed_out -> y.y_timed_out <- y.y_timed_out + 1
  | Error Engine.Rejected -> y.y_rejected <- y.y_rejected + 1
  | Error Engine.Shed -> y.y_shed <- y.y_shed + 1
  | Error Engine.Tripped -> y.y_tripped <- y.y_tripped + 1

let fleet_client_main cfg fleet (tenants : tenant array) ~make_input
    ~client_id () =
  let rng = Rng.create ~seed:(cfg.seed + (7919 * client_id)) in
  let tenant_weights = Array.map (fun tn -> tn.tn_share) tenants in
  let mixes =
    Array.map
      (fun tn ->
        ( Array.of_list (List.map fst tn.tn_mix),
          Array.of_list (List.map snd tn.tn_mix) ))
      tenants
  in
  let mean_gap_s = float_of_int cfg.clients /. Float.max 1e-6 cfg.rate_rps in
  let t0 = Unix.gettimeofday () in
  let deadline = t0 +. cfg.duration_s in
  let y =
    {
      y_offered = 0;
      y_ok = 0;
      y_failed = 0;
      y_timed_out = 0;
      y_rejected = 0;
      y_shed = 0;
      y_tripped = 0;
    }
  in
  let tickets = ref [] in
  let pending_burst = ref 0 in
  while Unix.gettimeofday () < deadline do
    let ti = Rng.categorical rng tenant_weights in
    let tn = tenants.(ti) in
    let shapes, weights = mixes.(ti) in
    let shape = shapes.(Rng.categorical rng weights) in
    y.y_offered <- y.y_offered + 1;
    (match
       Fleet.submit ?timeout_us:tn.tn_timeout_us fleet ~model:tn.tn_model
         ~shape
         (make_input ~model:tn.tn_model ~shape)
     with
    | Ok tk -> tickets := tk :: !tickets
    | Error e -> tally_outcome y (Error e));
    let elapsed_frac =
      Float.max 0.0
        (Float.min 1.0
           ((Unix.gettimeofday () -. t0) /. Float.max 1e-6 cfg.duration_s))
    in
    let gap = next_gap rng cfg.process ~mean_gap_s ~elapsed_frac ~pending_burst in
    if gap > 0.0 then Unix.sleepf gap
  done;
  List.iter (fun tk -> tally_outcome y (Fleet.wait tk)) !tickets;
  y

(** Drive a whole [fleet] per [config] (whose [mix] field is unused —
    each tenant carries its own) with seeded multi-tenant arrivals:
    every client draws a tenant by share, then a shape from that
    tenant's mix. [make_input] builds the VM argument for a (model,
    shape) draw. Validates every weighted distribution up front
    ({!validate_mix}) and that every tenant names a fleet model.
    @raise Invalid_argument on no tenants, bad weights, or an unknown
    model. *)
let run_fleet ?(config = default_config) fleet ~(tenants : tenant list)
    ~(make_input : model:string -> shape:int array -> Nimble_vm.Obj.t) :
    fleet_result =
  if config.clients < 1 then
    Fmt.invalid_arg "Loadgen.run_fleet: clients %d" config.clients;
  if tenants = [] then Fmt.invalid_arg "Loadgen.run_fleet: no tenants";
  validate_mix ~what:"tenant shares" (List.map (fun tn -> tn.tn_share) tenants);
  let known = Fleet.models fleet in
  List.iter
    (fun tn ->
      if not (List.mem tn.tn_model known) then
        Fmt.invalid_arg "Loadgen.run_fleet: unknown model %s" tn.tn_model;
      validate_mix ~what:(tn.tn_model ^ " mix") (List.map snd tn.tn_mix))
    tenants;
  let tenant_arr = Array.of_list tenants in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init config.clients (fun i ->
        Domain.spawn
          (fleet_client_main config fleet tenant_arr ~make_input ~client_id:i))
  in
  let tallies = List.map Domain.join domains in
  let wall_s = Unix.gettimeofday () -. t0 in
  let sum f = List.fold_left (fun acc y -> acc + f y) 0 tallies in
  {
    f_offered = sum (fun y -> y.y_offered);
    f_wall_s = wall_s;
    f_ok = sum (fun y -> y.y_ok);
    f_failed = sum (fun y -> y.y_failed);
    f_timed_out = sum (fun y -> y.y_timed_out);
    f_rejected = sum (fun y -> y.y_rejected);
    f_shed = sum (fun y -> y.y_shed);
    f_tripped = sum (fun y -> y.y_tripped);
    f_summaries = Fleet.model_stats fleet;
  }
