(** The serving engine: shape-bucketed dynamic batching over a pool of
    VM workers (architecture and tuning guide: [docs/SERVING.md]).

    Requests are admitted through a bounded queue (full = immediate
    reject, never blocking), grouped by {!Bucket} key until a bucket
    reaches [max_batch] or its oldest request has waited [max_wait_us],
    and executed by worker domains that each own a warm
    {!Nimble_vm.Interp.t} (reused storage arenas) and
    {!Nimble_vm.Interp.ctx} (reused register frame). Every request runs
    at its exact shape, so batched results are bitwise-identical to
    unbatched runs.

    Execution is supervised (failure taxonomy and retry policy:
    [docs/ROBUSTNESS.md]): a failing request completes with
    [Error (Failed failure)] instead of killing its worker, transient
    failures are retried with deadline-aware exponential backoff, and a
    worker whose batch dies outside the typed channel is restarted with
    a fresh interpreter after answering its stranded requests. *)

type error =
  | Rejected  (** admission refused: the submission queue was full *)
  | Timed_out
      (** the deadline passed before execution started (checked at worker
          pickup and again when a stashed bucket flushes) *)
  | Shed
      (** SLO-aware admission refused the request: given current queue
          depth and the observed service-time estimate its deadline
          provably could not be met ({!Admission}; only with an
          admission controller attached) *)
  | Tripped
      (** the (model, bucket) circuit breaker is open and shedding this
          lane while it recovers ({!Breaker}; produced by {!Fleet},
          never by a bare engine) *)
  | Failed of Nimble_vm.Interp.failure
      (** the VM failed; the typed failure says what, where, and whether
          it was transient (retries, if any, were already spent) *)

type outcome = (Nimble_vm.Obj.t, error) result

type config = {
  workers : int;  (** VM worker domains (each owns an interpreter) *)
  queue_capacity : int;  (** pending-queue bound; beyond it, reject *)
  max_batch : int;  (** flush a bucket at this many requests *)
  max_wait_us : float;  (** ... or when its oldest member waited this long *)
  policy : Bucket.policy;  (** shape-bucketing policy *)
  default_timeout_us : float option;
      (** deadline applied to requests submitted without one *)
  max_retries : int;
      (** per-request retries of {e transient} failures; persistent
          failures are never retried *)
  retry_backoff_us : float;
      (** base backoff before the first retry; doubles per attempt, with
          a small deterministic jitter, and never past the deadline *)
  pool_cap_bytes : int option;
      (** per-worker cap on VM storage retained across requests; an
          allocation that would exceed it fails as [Alloc] *)
  warm_hints : int array list;
      (** bucket-bound shapes each worker pre-binds its plan arenas at
          before serving (a restored snapshot's arena hints, so a warm
          restart reaches steady-state memory behaviour on its first
          batch) *)
}

(** 2 workers, capacity 64, batches of up to 8 formed within 2 ms,
    {!Bucket.default} padding, no default deadline; up to 3 transient
    retries starting at 200 µs backoff, no pool cap, no warm hints. *)
val default_config : config

type t

(** A claim on one submitted request's eventual {!outcome}. *)
type ticket

(** Start an engine over a linked executable: spawns the batch former and
    [config.workers] VM worker domains.
    @param func the VM function served (default ["main"]).
    @param trace record [serve.*] spans into this recorder.
    @param autotune attach an online shape specializer
    ([Nimble_codegen.Autotune]): the engine observes it once per executed
    batch — driving its hotness scans — and records a [vm.retune] span
    for every live install. The caller keeps ownership and should
    drain/shutdown it after {!shutdown}.
    @param admission attach an SLO-aware admission controller
    ({!Admission}): deadline-bearing requests that provably cannot meet
    their deadline are refused as [Error Shed] at submission, and the
    engine feeds the controller per-request service observations.
    @raise Invalid_argument on a non-positive worker or batch count. *)
val create :
  ?config:config -> ?trace:Nimble_vm.Trace.t ->
  ?autotune:Nimble_codegen.Autotune.t -> ?admission:Admission.t ->
  ?func:string -> Nimble_vm.Exe.t -> t

(** Submit one request: [shape] is the bucketing shape, [input] the VM
    argument (executed as-is, never padded). [Error Rejected] when the
    pending queue is full.
    @param timeout_us per-request deadline from now, overriding
    [config.default_timeout_us]. *)
val submit :
  ?timeout_us:float -> t -> shape:int array -> Nimble_vm.Obj.t -> (ticket, error) result

(** Block until the engine completes the ticket's request. *)
val wait : ticket -> outcome

(** {!submit} then {!wait}. *)
val run :
  ?timeout_us:float -> t -> shape:int array -> Nimble_vm.Obj.t -> outcome

(** Stop forming batches (admission keeps queueing, then rejecting when
    the queue fills). For tests and drain drills. *)
val pause : t -> unit

(** Resume batch formation after {!pause}. *)
val resume : t -> unit

(** Close admission, drain in-flight work, join all engine domains.
    Idempotent. *)
val shutdown : t -> unit

(** Frozen statistics snapshot (callable while serving). *)
val stats : t -> Stats.summary

(** {!stats} rendered as the [server] section for [nimble-profile/v1]. *)
val server_json : t -> Nimble_vm.Json.t

(** The engine's configuration (as given to {!create}). *)
val config : t -> config
