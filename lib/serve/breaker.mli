(** Per-(model, bucket) circuit breaker with Closed / Open / HalfOpen
    states (state machine and tuning: [docs/SERVING.md]; failure model:
    [docs/ROBUSTNESS.md]).

    Trips when the failure fraction of a sliding outcome window reaches
    a threshold; sheds while Open; after [cooldown] shed admissions lets
    a bounded trickle of HalfOpen probes through (each passing the
    ["breaker_probe"] fault point); re-closes only when every probe
    succeeds. No wall clock anywhere: transitions are a pure function of
    the {!admit}/{!record} call order, so seeded chaos tests replay the
    exact state sequence. *)

type state = Closed | Open | Half_open

type config = {
  window : int;  (** sliding outcome window (requests) in Closed *)
  failure_threshold : float;
      (** trip when the window is full and its failure fraction reaches
          this *)
  cooldown : int;  (** admissions shed while Open before probing *)
  probes : int;  (** HalfOpen trial budget; all must succeed to close *)
}

(** Window of 16, trip at half failing, probe after 8 shed, 2 probes. *)
val default_config : config

type t

(** A fresh breaker in [Closed] with an empty outcome window.
    @raise Invalid_argument on a non-positive window, cooldown or probe
    budget, or a threshold that is not above 0 and at most 1. *)
val create : ?config:config -> unit -> t

(** An {!admit} decision: run the request normally, run it as a HalfOpen
    trial (complete it with {!record} [~probe:true]), or shed it. *)
type decision = Allow | Probe | Shed

(** Ask the breaker whether to admit one request. [Shed] costs nothing
    and advances the Open cooldown; [Probe] obliges the caller to
    {!record} the outcome with [~probe:true]. An injected
    ["breaker_probe"] fault refuses the trial dispatch itself (counted
    as a failed probe; the caller sees [Shed]). *)
val admit : t -> decision

(** Record one admitted request's outcome ([ok] = served successfully).
    In [Closed], failures accumulate in the window and can trip the
    breaker; with [~probe:true] a failure re-opens immediately and the
    last needed success closes with a fresh window. *)
val record : ?probe:bool -> t -> ok:bool -> unit

(** The current state (racy under concurrency; exact in seeded tests). *)
val state : t -> state

(** Cumulative counters for stats and the fleet bench. *)
type counters = {
  c_trips : int;  (** transitions into Open (includes re-opens) *)
  c_shed : int;  (** admissions shed while Open / over probe budget *)
  c_reopens : int;  (** HalfOpen probes that failed and re-opened *)
  c_closes : int;  (** successful HalfOpen -> Closed recoveries *)
}

(** Snapshot the cumulative trip/shed/reopen/close counters. *)
val counters : t -> counters

(** The breaker's configuration (as given to {!create}). *)
val config : t -> config

(** Render a {!state} as ["closed"] / ["open"] / ["half_open"]. *)
val state_name : state -> string
