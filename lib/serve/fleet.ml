(** The fleet tier: many models served side by side, each with its own
    shard pool, admission controller, and per-bucket circuit breakers
    (architecture: [docs/SERVING.md]; failure policy:
    [docs/ROBUSTNESS.md]).

    A fleet owns one {!Cache} (compile-once, snapshot/restore) and one
    {!Engine} per model. Weighted fair scheduling is capacity
    partitioning: the fleet's worker budget is split across models
    proportionally to their weights (largest-remainder rounding, at
    least one worker each), so under saturation each model's throughput
    tracks its share without a central scheduler domain. Each model gets
    its own SLO {!Admission} controller — service-time estimates never
    leak between models — and a lazy {!Breaker} per (model, bucket)
    lane, consulted before the engine sees the request: an open lane
    answers [Error Tripped] immediately.

    Checkpoint/warm-restart: {!snapshot} persists every model's
    executable, live tune table, and observed arena-bound hints through
    {!Cache.snapshot}; {!warm_restart} shuts one model's shard pool
    down, relinks its executable from disk {e without recompiling}, and
    brings up a fresh pool whose workers pre-bind their arenas at the
    snapshotted hints. *)

type spec = {
  name : string;  (** model identifier (unique within the fleet) *)
  build : unit -> Nimble_ir.Irmod.t;  (** IR builder for the cold load *)
  weight : int;  (** fair-share weight (>= 1) *)
}

type config = {
  total_workers : int;  (** worker budget split across models by weight *)
  engine : Engine.config;
      (** per-model engine template; its [workers] field is replaced by
          the model's weighted share *)
  admission : Admission.config option;
      (** SLO admission per model; [None] disables shedding *)
  breaker : Breaker.config option;
      (** circuit breaking per (model, bucket); [None] disables *)
}

(** 4 workers total, the engine defaults, admission and breakers on with
    their default configs. *)
let default_config =
  {
    total_workers = 4;
    engine = Engine.default_config;
    admission = Some Admission.default_config;
    breaker = Some Breaker.default_config;
  }

type model = {
  m_weight : int;
  m_workers : int;
  mutable m_engine : Engine.t;
  m_admission : Admission.t option;
  m_mux : Mutex.t;  (** guards breakers, observed buckets, engine swap *)
  m_breakers : (string, Breaker.t) Hashtbl.t;  (** bucket key -> breaker *)
  m_observed : (string, int array) Hashtbl.t;
      (** bucket key -> bucket dims, for snapshot arena hints *)
  mutable m_restarts : int;  (** {!warm_restart}s performed *)
}

type t = {
  cfg : config;
  func : string;
  cache : Cache.t;
  order : string list;  (** model names in {!create} order *)
  models : (string, model) Hashtbl.t;
  trace : Nimble_vm.Trace.t option;
}

(** Split [total] workers across [weights] proportionally
    (largest-remainder rounding), guaranteeing one worker per model. *)
let allocate_workers ~total weights =
  let n = Array.length weights in
  let sum = Array.fold_left ( + ) 0 weights in
  if sum <= 0 then Array.make n 1
  else begin
    let exact =
      Array.map
        (fun w -> float_of_int (w * Stdlib.max n total) /. float_of_int sum)
        weights
    in
    let alloc = Array.map (fun e -> Stdlib.max 1 (int_of_float e)) exact in
    let used = Array.fold_left ( + ) 0 alloc in
    (* hand leftover workers to the largest fractional remainders *)
    let order =
      List.sort
        (fun a b ->
          Float.compare
            (exact.(b) -. Float.of_int alloc.(b))
            (exact.(a) -. Float.of_int alloc.(a)))
        (List.init n Fun.id)
    in
    let leftover = ref (Stdlib.max 0 (Stdlib.max n total - used)) in
    List.iter
      (fun i ->
        if !leftover > 0 then begin
          alloc.(i) <- alloc.(i) + 1;
          decr leftover
        end)
      order;
    alloc
  end

(** Bring up a fleet: cold-load every spec through the shared cache (the
    serialize/verify/relink deployment path) and start one engine per
    model with its weighted worker share.
    @param options compiler options for the cold loads.
    @param func the VM function served by every model (default ["main"]).
    @param trace shared span recorder handed to every engine.
    @raise Invalid_argument on an empty spec list, a duplicate name, a
    non-positive weight, or a non-positive worker budget. *)
let create ?options ?trace ?(config = default_config) ?(func = "main")
    (specs : spec list) : t =
  if specs = [] then Fmt.invalid_arg "Fleet.create: no models";
  if config.total_workers < 1 then
    Fmt.invalid_arg "Fleet.create: total_workers %d" config.total_workers;
  List.iter
    (fun s ->
      if s.weight < 1 then
        Fmt.invalid_arg "Fleet.create: model %s weight %d" s.name s.weight)
    specs;
  let cache = Cache.create () in
  let weights = Array.of_list (List.map (fun s -> s.weight) specs) in
  let shares = allocate_workers ~total:config.total_workers weights in
  let models = Hashtbl.create (List.length specs) in
  List.iteri
    (fun i (s : spec) ->
      if Hashtbl.mem models s.name then
        Fmt.invalid_arg "Fleet.create: duplicate model %s" s.name;
      let exe = Cache.load ?options cache ~name:s.name ~build:s.build in
      let admission =
        Option.map (fun c -> Admission.create ~config:c ()) config.admission
      in
      let engine_cfg = { config.engine with Engine.workers = shares.(i) } in
      let engine =
        Engine.create ~config:engine_cfg ?trace ?admission ~func exe
      in
      Hashtbl.replace models s.name
        {
          m_weight = s.weight;
          m_workers = shares.(i);
          m_engine = engine;
          m_admission = admission;
          m_mux = Mutex.create ();
          m_breakers = Hashtbl.create 4;
          m_observed = Hashtbl.create 4;
          m_restarts = 0;
        })
    specs;
  {
    cfg = config;
    func;
    cache;
    order = List.map (fun s -> s.name) specs;
    models;
    trace;
  }

let find t name =
  match Hashtbl.find_opt t.models name with
  | Some m -> m
  | None -> Fmt.invalid_arg "Fleet: unknown model %s" name

let with_mutex mux f =
  Mutex.lock mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock mux) f

(** A claim on one fleet request; resolve with {!wait}. *)
type ticket = {
  tk_eng : Engine.ticket;
  tk_breaker : Breaker.t option;
  tk_probe : bool;
  tk_recorded : bool Atomic.t;  (** breaker outcome recorded exactly once *)
}

(** Submit one request to [model]. The (model, bucket) breaker is
    consulted first — an open lane answers [Error Tripped] without
    touching the engine (and without counting against the model's
    queue). A HalfOpen probe that the engine refuses ([Rejected] /
    [Shed]) is recorded as a failed trial, so the breaker can never
    wedge waiting on a probe that never ran.
    @raise Invalid_argument on an unknown model. *)
let submit ?timeout_us t ~model ~shape input :
    (ticket, Engine.error) result =
  let m = find t model in
  let key = Bucket.key_string t.cfg.engine.Engine.policy shape in
  let breaker =
    with_mutex m.m_mux (fun () ->
        if not (Hashtbl.mem m.m_observed key) then
          Hashtbl.replace m.m_observed key
            (Bucket.key t.cfg.engine.Engine.policy shape);
        match t.cfg.breaker with
        | None -> None
        | Some bcfg -> (
            match Hashtbl.find_opt m.m_breakers key with
            | Some b -> Some b
            | None ->
                let b = Breaker.create ~config:bcfg () in
                Hashtbl.replace m.m_breakers key b;
                Some b))
  in
  let decision =
    match breaker with None -> Breaker.Allow | Some b -> Breaker.admit b
  in
  match decision with
  | Breaker.Shed -> Error Engine.Tripped
  | Breaker.Allow | Breaker.Probe -> (
      let probe = decision = Breaker.Probe in
      match Engine.submit ?timeout_us m.m_engine ~shape input with
      | Ok tk ->
          Ok
            {
              tk_eng = tk;
              tk_breaker = breaker;
              tk_probe = probe;
              tk_recorded = Atomic.make false;
            }
      | Error e ->
          (* the engine refused at admission; a probe must still resolve
             or the HalfOpen budget leaks *)
          (if probe then
             match breaker with
             | Some b -> Breaker.record ~probe:true b ~ok:false
             | None -> ());
          Error e)

(** Block for the request's outcome and feed it to the lane's breaker:
    VM failures ([Error (Failed _)]) count against the lane; timeouts
    and queue pressure do not (they are load, which admission owns) —
    except for a probe, which must actually succeed to vouch for the
    lane. Safe to call multiple times; the breaker sees one record. *)
let wait (tk : ticket) : Engine.outcome =
  let outcome = Engine.wait tk.tk_eng in
  (match tk.tk_breaker with
  | Some b when not (Atomic.exchange tk.tk_recorded true) ->
      let ok =
        match outcome with
        | Ok _ -> true
        | Error (Engine.Failed _) -> false
        | Error _ -> not tk.tk_probe
      in
      Breaker.record ~probe:tk.tk_probe b ~ok
  | _ -> ());
  outcome

(** {!submit} then {!wait}. *)
let run ?timeout_us t ~model ~shape input : Engine.outcome =
  match submit ?timeout_us t ~model ~shape input with
  | Ok tk -> wait tk
  | Error e -> Error e

(** The model's live engine (stats, direct submission in tests). The
    handle goes stale across {!warm_restart}.
    @raise Invalid_argument on an unknown model. *)
let engine t ~model = (find t model).m_engine

(** Model names in {!create} order. *)
let models t = t.order

(** (weight, workers) for a model.
    @raise Invalid_argument on an unknown model. *)
let share t ~model =
  let m = find t model in
  (m.m_weight, m.m_workers)

(** The shared executable cache (snapshot plumbing, hit/miss counters). *)
let cache t = t.cache

(** Per-model frozen statistics, in {!create} order. *)
let model_stats t =
  List.map (fun name -> (name, Engine.stats (find t name).m_engine)) t.order

(** Sum a model's breaker counters across its (bucket) lanes, plus how
    many lanes exist and how many are currently not Closed. *)
let breaker_totals t ~model =
  let m = find t model in
  with_mutex m.m_mux (fun () ->
      Hashtbl.fold
        (fun _key b (acc, lanes, open_lanes) ->
          let c = Breaker.counters b in
          ( {
              Breaker.c_trips = acc.Breaker.c_trips + c.Breaker.c_trips;
              c_shed = acc.Breaker.c_shed + c.Breaker.c_shed;
              c_reopens = acc.Breaker.c_reopens + c.Breaker.c_reopens;
              c_closes = acc.Breaker.c_closes + c.Breaker.c_closes;
            },
            lanes + 1,
            open_lanes + (if Breaker.state b = Breaker.Closed then 0 else 1) ))
        m.m_breakers
        ({ Breaker.c_trips = 0; c_shed = 0; c_reopens = 0; c_closes = 0 }, 0, 0))

(** Checkpoint the whole fleet to [dir]: every model's executable and
    live tune table, plus the bucket shapes each model has actually
    served (the arena hints a restarted shard pre-warms at). Each
    checkpoint lands in a fresh [gen-N] subdirectory; [keep] (default 2)
    generations are retained — see {!Cache.snapshot}. Returns the model
    count written. I/O passes the ["snapshot_io"] fault point. *)
let snapshot ?keep t ~dir : int =
  let hints =
    List.map
      (fun name ->
        let m = find t name in
        let dims =
          with_mutex m.m_mux (fun () ->
              Hashtbl.fold (fun _k d acc -> d :: acc) m.m_observed [])
          |> List.sort compare
        in
        (name, dims))
      t.order
  in
  Cache.snapshot ~hints ?keep t.cache ~dir

(** Warm-restart one model from the snapshot in [dir]: shut its shard
    pool down, relink the snapshotted executable from the cache's link
    registry ({e no recompilation}), replay its tune table, and start a
    fresh pool whose workers pre-bind plan arenas at the snapshotted
    hints before taking traffic. The model's admission estimate and
    breaker lanes survive the restart; the engine's counters start
    fresh. Returns the {!Cache.restored} record for the model.
    @raise Invalid_argument on an unknown model; {!Cache.restore}
    failures propagate. *)
let warm_restart t ~dir ~model : Cache.restored =
  let m = find t model in
  Engine.shutdown m.m_engine;
  let restored = Cache.restore t.cache ~dir in
  match List.find_opt (fun r -> r.Cache.r_name = model) restored with
  | None -> Fmt.failwith "snapshot at %s does not contain model %s" dir model
  | Some r ->
      with_mutex m.m_mux (fun () ->
          let engine_cfg =
            {
              t.cfg.engine with
              Engine.workers = m.m_workers;
              warm_hints = r.Cache.r_arena_hints;
            }
          in
          m.m_engine <-
            Engine.create ~config:engine_cfg ?trace:t.trace
              ?admission:m.m_admission ~func:t.func r.Cache.r_exe;
          m.m_restarts <- m.m_restarts + 1);
      r

(** Drain and stop every model's engine. Idempotent. *)
let shutdown t =
  List.iter (fun name -> Engine.shutdown (find t name).m_engine) t.order

(** The [fleet] JSON section for [nimble-profile/v1] (see
    [docs/OBSERVABILITY.md]): per-model weight/worker share, restarts,
    the model's [server] stats, and its summed breaker counters. *)
let fleet_json t : Nimble_vm.Json.t =
  let open Nimble_vm.Json in
  let per_model =
    List.map
      (fun name ->
        let m = find t name in
        let c, lanes, open_lanes = breaker_totals t ~model:name in
        ( name,
          Obj
            [
              ("weight", Int m.m_weight);
              ("workers", Int m.m_workers);
              ("restarts", Int m.m_restarts);
              ("server", Stats.summary_to_json (Engine.stats m.m_engine));
              ( "breakers",
                Obj
                  [
                    ("lanes", Int lanes);
                    ("open_lanes", Int open_lanes);
                    ("trips", Int c.Breaker.c_trips);
                    ("shed", Int c.Breaker.c_shed);
                    ("reopens", Int c.Breaker.c_reopens);
                    ("closes", Int c.Breaker.c_closes);
                  ] );
            ] ))
      t.order
  in
  let totals =
    List.fold_left
      (fun (trips, shed) name ->
        let c, _, _ = breaker_totals t ~model:name in
        (trips + c.Breaker.c_trips, shed + c.Breaker.c_shed))
      (0, 0) t.order
  in
  Obj
    [
      ("total_workers", Int t.cfg.total_workers);
      ("trips", Int (fst totals));
      ("breaker_shed", Int (snd totals));
      ("models", Obj per_model);
    ]
