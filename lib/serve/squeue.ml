(** Bounded multi-producer/multi-consumer queue — the serving engine's
    backpressure primitive.

    Producers never block: {!try_push} refuses immediately when the
    queue is at capacity (the engine turns that into a [`Rejected]
    admission result instead of letting clients pile up behind a stalled
    server). Consumers block in {!pop} until an element or {!close}.
    Closing is graceful: queued elements drain; only then does {!pop}
    return [None]. The high-water mark is kept for observability (the
    [queue_depth_hwm] field of the server stats). *)

type 'a t = {
  mux : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  items : 'a Queue.t;
  capacity : int;
  mutable closed : bool;
  mutable high_water : int;  (** max depth ever observed *)
}

let create ~capacity =
  if capacity <= 0 then Fmt.invalid_arg "Squeue.create: capacity %d" capacity;
  {
    mux = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
    high_water = 0;
  }

let with_lock t f =
  Mutex.lock t.mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mux) f

(** Enqueue without blocking: [false] when the queue is full or closed
    (the caller decides whether that is a reject or a retry). Evaluates
    the ["queue_push"] fault-injection point {e before} taking the lock:
    an injected fault refuses the element without touching the queue, so
    chaos runs exercise the admission-reject path, never a corrupt one. *)
let try_push t x =
  Nimble_fault.Fault.check "queue_push";
  with_lock t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        t.high_water <- Stdlib.max t.high_water (Queue.length t.items);
        Condition.signal t.nonempty;
        true
      end)

(** Enqueue, blocking while the queue is full; [false] only when the
    queue is (or becomes) closed. Used between engine stages, where an
    element must not be dropped and backpressure should propagate
    upstream instead. *)
let push t x =
  with_lock t (fun () ->
      while Queue.length t.items >= t.capacity && not t.closed do
        Condition.wait t.nonfull t.mux
      done;
      if t.closed then false
      else begin
        Queue.push x t.items;
        t.high_water <- Stdlib.max t.high_water (Queue.length t.items);
        Condition.signal t.nonempty;
        true
      end)

(** Dequeue, blocking until an element is available or the queue is
    closed and fully drained ([None]). *)
let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.mux
      done;
      if Queue.is_empty t.items then None
      else begin
        let x = Queue.pop t.items in
        Condition.signal t.nonfull;
        Some x
      end)

(** Dequeue without blocking; [None] when currently empty. *)
let try_pop t =
  with_lock t (fun () ->
      if Queue.is_empty t.items then None
      else begin
        let x = Queue.pop t.items in
        Condition.signal t.nonfull;
        Some x
      end)

(** Mark the queue closed: producers are refused from now on, consumers
    drain what is queued and then see [None]. Idempotent. *)
let close t =
  with_lock t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty;
      Condition.broadcast t.nonfull)

let closed t = with_lock t (fun () -> t.closed)

let length t = with_lock t (fun () -> Queue.length t.items)

(** The fixed bound given to {!create} (the admission controller's
    denominator when estimating sojourn time). *)
let capacity t = t.capacity

(** Deepest the queue has ever been (not reset by pops). *)
let high_water t = with_lock t (fun () -> t.high_water)
