(** Serving-engine statistics: admission counters, batch-size histogram,
    latency percentiles. Thread-safe recorders; [summary] freezes a
    consistent snapshot and [summary_to_json] renders the [server]
    section of [nimble-profile/v1] (see [docs/OBSERVABILITY.md]). *)

type t

(** A zeroed recorder with its own mutex. *)
val create : unit -> t

(** One request submitted (counted whether or not it is admitted). *)
val record_submit : t -> unit

(** One request refused at admission (pending queue full). *)
val record_reject : t -> unit

(** One request whose deadline passed between flush and worker pickup
    (it reached a worker but was not executed). *)
val record_timeout : t -> unit

(** One request refused by SLO-aware admission control: its deadline
    provably could not be met, so it was never queued
    ([docs/SERVING.md]). *)
val record_shed_admission : t -> unit

(** One request whose deadline passed while stashed in the batch former,
    shed at flush time (it never reached a worker). *)
val record_shed_flush : t -> unit

(** One request completed with a non-VM error (no typed failure). *)
val record_error : t -> unit

(** One transient failure retried by a worker (with backoff). *)
val record_retry : t -> unit

(** One worker domain resurrected by the supervisor after dying. *)
val record_worker_restart : t -> unit

(** One request failed with a typed VM failure: bumps the error count and
    the per-kind tally ([kind] is [Nimble_vm.Interp.kind_name]). *)
val record_failure : t -> kind:string -> unit

(** One completed request with its submit-to-complete latency (µs). *)
val record_complete : t -> latency_us:float -> unit

(** One formed batch of [size] requests. *)
val record_batch : t -> size:int -> unit

(** Fold a submission-queue depth observation into the high-water mark. *)
val observe_queue_depth : t -> int -> unit

(** Accumulate a worker's per-batch VM warm-state counters:
    register-frame reuses, storage-pool hits, storage allocations
    actually performed, and symbolic-plan arena rebinds (persistent
    arenas reused instead of allocated). All arguments are deltas over
    one batch. *)
val record_reuse :
  t -> frame_reuses:int -> arena_hits:int -> allocs:int -> arena_reuses:int -> unit

type summary = {
  s_submitted : int;
  s_completed : int;
  s_rejected : int;  (** refused at admission (queue full) *)
  s_shed_admission : int;
      (** refused by SLO-aware admission control (deadline provably
          unmeetable; never queued) *)
  s_shed_flush : int;
      (** deadline passed while stashed in the batch former; shed at
          flush, never reached a worker *)
  s_timeouts : int;
      (** deadline passed between flush and worker pickup *)
  s_errors : int;  (** VM faults surfaced to clients *)
  s_batches : int;
  s_queue_depth_hwm : int;
  s_batch_hist : (int * int) list;  (** (batch size, count), ascending *)
  s_mean_batch : float;
  s_p50_ms : float;  (** 0 when nothing completed *)
  s_p99_ms : float;
  s_mean_ms : float;
  s_frame_reuses : int;  (** VM register-frame reuses across workers *)
  s_arena_hits : int;  (** storage-pool hits across workers *)
  s_allocs_per_request : float;
      (** storage allocations per completed request across workers — the
          headline number symbolic planning collapses (near zero once the
          persistent arenas are warm) *)
  s_arena_reuses : int;
      (** symbolic-plan arena rebinds across workers: [BindArena]
          executions that reused a persistent arena instead of
          allocating one (see [docs/MEMORY.md]) *)
  s_retries : int;  (** transient failures retried by workers *)
  s_worker_restarts : int;  (** worker domains resurrected after dying *)
  s_failure_kinds : (string * int) list;
      (** (typed-failure kind, count), sorted by kind; sums to at most
          [s_errors] *)
}

(** Freeze a consistent snapshot (percentiles computed at call time). *)
val summary : t -> summary

(** The [server] JSON section embedded in [nimble-profile/v1]. *)
val summary_to_json : summary -> Nimble_vm.Json.t

(** Human-readable dump (CLI output). *)
val pp_summary : Format.formatter -> summary -> unit
