(** The fleet tier: many models side by side, each with its own shard
    pool (weighted worker share), SLO {!Admission} controller, and lazy
    per-(model, bucket) {!Breaker} lanes; plus fleet-wide
    checkpoint/warm-restart through {!Cache}. Admission math, the
    breaker state diagram, and the snapshot format are documented in
    [docs/SERVING.md]. *)

type spec = {
  name : string;  (** model identifier (unique within the fleet) *)
  build : unit -> Nimble_ir.Irmod.t;  (** IR builder for the cold load *)
  weight : int;  (** fair-share weight (>= 1) *)
}

type config = {
  total_workers : int;  (** worker budget split across models by weight *)
  engine : Engine.config;
      (** per-model engine template; its [workers] field is replaced by
          the model's weighted share *)
  admission : Admission.config option;
      (** SLO admission per model; [None] disables shedding *)
  breaker : Breaker.config option;
      (** circuit breaking per (model, bucket); [None] disables *)
}

(** 4 workers total, the engine defaults, admission and breakers on with
    their default configs. *)
val default_config : config

type t

(** Bring up a fleet: cold-load every spec through one shared cache and
    start one engine per model with its weighted worker share
    (largest-remainder split, at least one worker each).
    @param options compiler options for the cold loads.
    @param trace shared span recorder handed to every engine.
    @param func the VM function served by every model (default ["main"]).
    @raise Invalid_argument on an empty spec list, a duplicate name, a
    non-positive weight, or a non-positive worker budget. *)
val create :
  ?options:Nimble_compiler.Nimble.options ->
  ?trace:Nimble_vm.Trace.t ->
  ?config:config -> ?func:string -> spec list -> t

(** A claim on one fleet request; resolve with {!wait}. *)
type ticket

(** Submit one request to [model]. The (model, bucket) breaker is
    consulted first: an open lane answers [Error Tripped] without
    touching the engine. A HalfOpen probe the engine refuses is recorded
    as a failed trial so the probe budget cannot leak.
    @param timeout_us per-request deadline from now.
    @raise Invalid_argument on an unknown model. *)
val submit :
  ?timeout_us:float -> t -> model:string -> shape:int array ->
  Nimble_vm.Obj.t -> (ticket, Engine.error) result

(** Block for the outcome and feed it to the lane's breaker (VM failures
    count against the lane; timeouts and queue pressure do not, except
    for probes, which must actually succeed). Safe to call repeatedly;
    the breaker sees exactly one record. *)
val wait : ticket -> Engine.outcome

(** {!submit} then {!wait}. *)
val run :
  ?timeout_us:float -> t -> model:string -> shape:int array ->
  Nimble_vm.Obj.t -> Engine.outcome

(** The model's live engine (stats, direct submission in tests); the
    handle goes stale across {!warm_restart}.
    @raise Invalid_argument on an unknown model. *)
val engine : t -> model:string -> Engine.t

(** Model names in {!create} order. *)
val models : t -> string list

(** (weight, workers) for a model.
    @raise Invalid_argument on an unknown model. *)
val share : t -> model:string -> int * int

(** The shared executable cache (snapshot plumbing, hit/miss counters). *)
val cache : t -> Cache.t

(** Per-model frozen statistics, in {!create} order. *)
val model_stats : t -> (string * Stats.summary) list

(** A model's breaker counters summed across its bucket lanes, plus
    (lane count, lanes currently not Closed).
    @raise Invalid_argument on an unknown model. *)
val breaker_totals : t -> model:string -> Breaker.counters * int * int

(** Checkpoint the fleet to [dir]: every model's executable, live tune
    table, and observed-bucket arena hints, under a versioned manifest
    in a fresh [gen-N] generation subdirectory with the newest [keep]
    (default 2) generations retained ({!Cache.snapshot}). Returns the
    model count written. *)
val snapshot : ?keep:int -> t -> dir:string -> int

(** Warm-restart one model from the snapshot in [dir]: shut its pool
    down, relink from the cache's registry without recompiling, replay
    tunes, and start a fresh pool pre-warmed at the snapshotted arena
    hints. Admission estimates and breaker lanes survive; engine
    counters start fresh.
    @raise Invalid_argument on an unknown model; {!Cache.restore}
    failures propagate. *)
val warm_restart : t -> dir:string -> model:string -> Cache.restored

(** Drain and stop every model's engine. Idempotent. *)
val shutdown : t -> unit

(** The [fleet] JSON section for [nimble-profile/v1]
    ([docs/OBSERVABILITY.md]): per-model weight/worker share, restarts,
    [server] stats, and summed breaker counters. *)
val fleet_json : t -> Nimble_vm.Json.t
