(** Open-loop synthetic load generator for {!Engine}: weighted shape
    mix, seeded Poisson (or steady) arrivals across N client domains,
    full drain before reporting. See [docs/SERVING.md]. *)

type mix = (int array * float) list

type process = Poisson  (** exponential inter-arrival gaps *) | Steady  (** fixed gaps *)

type config = {
  rate_rps : float;  (** aggregate offered arrival rate, all clients *)
  duration_s : float;  (** generation window (drain time is extra) *)
  clients : int;  (** submitting domains, each at [rate_rps / clients] *)
  mix : mix;  (** weighted shape distribution *)
  process : process;
  seed : int;  (** arrival and mix draws are deterministic per seed *)
  timeout_us : float option;  (** per-request deadline passed to submit *)
}

(** 200 rps for 1 s from 2 clients, all-[| 8 |] mix, Poisson, seed 42. *)
val default_config : config

type result = {
  offered : int;  (** submission attempts across all clients *)
  wall_s : float;  (** generation window + drain, wall clock *)
  achieved_rps : float;  (** completed requests / [wall_s] *)
  summary : Stats.summary;  (** the engine's cumulative statistics *)
}

(** Drive [engine] per [config]; [make_input] builds the VM argument for
    a drawn shape (called on the client domain at submit time). Use a
    fresh engine per measurement point — engine stats are cumulative. *)
val run :
  ?config:config -> Engine.t -> make_input:(shape:int array -> Nimble_vm.Obj.t) -> result
