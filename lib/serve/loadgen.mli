(** Open-loop synthetic load generator for {!Engine} and {!Fleet}:
    weighted shape mix, seeded arrivals (Poisson, steady, bursty,
    diurnal) across N client domains, full drain before reporting. See
    [docs/SERVING.md]. *)

type mix = (int array * float) list

(** Validate a weighted distribution (non-empty, no negative weight,
    positive sum). @raise Invalid_argument with a one-line message
    otherwise — called by {!run} / {!run_fleet} before any client domain
    draws from it. *)
val validate_mix : what:string -> float list -> unit

type process =
  | Poisson  (** exponential inter-arrival gaps *)
  | Steady  (** fixed gaps *)
  | Bursty of { burst : int }
      (** [burst] back-to-back arrivals, then one exponential gap scaled
          by the burst size (same aggregate rate, spikier queueing) *)
  | Diurnal of { cycles : float; depth : float }
      (** Poisson whose instantaneous rate swings sinusoidally by
          [±depth] over [cycles] periods of the generation window *)

type config = {
  rate_rps : float;  (** aggregate offered arrival rate, all clients *)
  duration_s : float;  (** generation window (drain time is extra) *)
  clients : int;  (** submitting domains, each at [rate_rps / clients] *)
  mix : mix;  (** weighted shape distribution *)
  process : process;
  seed : int;  (** arrival and mix draws are deterministic per seed *)
  timeout_us : float option;  (** per-request deadline passed to submit *)
}

(** 200 rps for 1 s from 2 clients, all-[| 8 |] mix, Poisson, seed 42. *)
val default_config : config

type result = {
  offered : int;  (** submission attempts across all clients *)
  wall_s : float;  (** generation window + drain, wall clock *)
  achieved_rps : float;  (** completed requests / [wall_s] *)
  summary : Stats.summary;  (** the engine's cumulative statistics *)
}

(** Drive [engine] per [config]; [make_input] builds the VM argument for
    a drawn shape (called on the client domain at submit time). Use a
    fresh engine per measurement point — engine stats are cumulative.
    @raise Invalid_argument on a bad client count or mix. *)
val run :
  ?config:config -> Engine.t -> make_input:(shape:int array -> Nimble_vm.Obj.t) -> result

(** One tenant of a multi-tenant run: which model it hits, its share of
    aggregate arrivals, and its own shape mix and deadline. *)
type tenant = {
  tn_model : string;
  tn_share : float;  (** fraction of aggregate arrivals (relative weight) *)
  tn_mix : mix;
  tn_timeout_us : float option;
}

(** Client-side outcome tallies of a fleet run (breaker sheds never
    reach the engines' own stats, so the driver counts outcomes where
    the client observes them). *)
type fleet_result = {
  f_offered : int;  (** submission attempts across all clients *)
  f_wall_s : float;  (** generation window + drain, wall clock *)
  f_ok : int;  (** requests completed with [Ok] *)
  f_failed : int;  (** [Error (Failed _)] — VM failures *)
  f_timed_out : int;  (** [Error Timed_out] *)
  f_rejected : int;  (** [Error Rejected] — queue full *)
  f_shed : int;  (** [Error Shed] — SLO admission refusals *)
  f_tripped : int;  (** [Error Tripped] — breaker refusals *)
  f_summaries : (string * Stats.summary) list;  (** per-model engine stats *)
}

(** Drive a whole [fleet] per [config] (its [mix] field is unused — each
    tenant carries its own) with seeded multi-tenant arrivals: every
    client draws a tenant by share, then a shape from that tenant's mix.
    @raise Invalid_argument on a bad client count, no tenants, bad
    weights, or a tenant naming an unknown model. *)
val run_fleet :
  ?config:config -> Fleet.t -> tenants:tenant list ->
  make_input:(model:string -> shape:int array -> Nimble_vm.Obj.t) ->
  fleet_result
