(** Bounded multi-producer/multi-consumer queue with non-blocking
    admission (backpressure by refusal, not by blocking) and graceful
    close-and-drain. See [docs/SERVING.md]. *)

type 'a t

(** [create ~capacity] makes an empty queue refusing pushes beyond
    [capacity] elements. @raise Invalid_argument when [capacity <= 0]. *)
val create : capacity:int -> 'a t

(** Enqueue without blocking: [false] when full or closed. Evaluates the
    ["queue_push"] fault-injection point before touching the queue, so an
    injected fault ([Nimble_fault.Fault.Injected]) leaves the queue
    state unchanged. *)
val try_push : 'a t -> 'a -> bool

(** Enqueue, blocking while full; [false] only when closed. For
    engine-internal stages where backpressure must propagate upstream
    rather than drop elements. *)
val push : 'a t -> 'a -> bool

(** Dequeue, blocking until an element arrives or the queue is closed
    and drained ([None]). *)
val pop : 'a t -> 'a option

(** Dequeue without blocking; [None] when currently empty. *)
val try_pop : 'a t -> 'a option

(** Refuse producers from now on; consumers drain then see [None].
    Idempotent. *)
val close : 'a t -> unit

(** Has {!close} been called? *)
val closed : 'a t -> bool

(** Current depth. *)
val length : 'a t -> int

(** The fixed bound given to {!create} (the admission controller's
    denominator when estimating sojourn time). *)
val capacity : 'a t -> int

(** Deepest the queue has ever been. *)
val high_water : 'a t -> int
