(** The serving engine: shape-bucketed dynamic batching over a pool of
    VM workers.

    {v
      clients --submit--> [pending queue] --> batch former --> [batch queue]
                 (bounded: full = reject)     (bucket, wait)      (bounded)
                                                                     |
                                             workers <---------------+
                                      (one Interp + ctx each,
                                       warm arenas + frames)
    v}

    - {b Admission}: {!submit} never blocks. A full pending queue is an
      immediate [Error Rejected] — backpressure by refusal, so a stalled
      server sheds load instead of queueing unboundedly.
    - {b Batching}: the batch former groups requests by {!Bucket} key.
      A bucket flushes when it reaches [max_batch] requests or its
      oldest member has waited [max_wait_us], whichever comes first, so
      a lone request never waits more than the knob allows. Distinct
      buckets accumulate independently (no head-of-line blocking).
    - {b Execution}: each worker owns one {!Nimble_vm.Interp.t} over the
      shared executable plus a reusable {!Nimble_vm.Interp.ctx}, so a
      steady-state request allocates neither a register frame nor (after
      warmup, per distinct shape) storage. Every request runs at its
      {e exact} shape — bucketing affects scheduling and memory reuse
      only — so batched results are bitwise-identical to unbatched runs.
    - {b Deadlines}: a request whose deadline passes before execution —
      checked both when a worker picks it up and when its bucket flushes
      — is completed with [Error Timed_out] without running (admission
      control for stale work); one that started executing runs to the
      end.
    - {b Failures}: a request whose execution fails completes with
      [Error (Failed failure)] carrying the VM's typed failure; the
      worker survives. Transient failures (injected faults in transient
      mode) are retried up to [max_retries] times with deadline-aware
      exponential backoff before surfacing. A worker whose batch escapes
      the typed channel entirely is supervised: stranded requests are
      answered, the interpreter is rebuilt, and the worker keeps
      consuming (see [docs/ROBUSTNESS.md]).
    - {b Shutdown}: {!shutdown} closes admission, drains every queued
      request through the workers, then joins all engine domains.

    When more than one worker runs, workers execute kernels under
    {!Nimble_parallel.Parallel.pinned_sequential}: request-level
    parallelism owns the cores and the single-slot kernel pool is never
    contended (results are identical either way). With one worker,
    kernels keep fanning out over the domain pool, so [--domains]
    composes with serving in both regimes. *)

module Interp = Nimble_vm.Interp
module Obj = Nimble_vm.Obj
module Trace = Nimble_vm.Trace
module Parallel = Nimble_parallel.Parallel
module Fault = Nimble_fault.Fault

type error =
  | Rejected  (** admission refused: the submission queue was full *)
  | Timed_out  (** the deadline passed before execution started *)
  | Shed
      (** SLO-aware admission refused the request: given the current
          queue depth and the observed service-time estimate, its
          deadline provably could not be met (see {!Admission}) *)
  | Tripped
      (** the (model, bucket) circuit breaker is open: the fleet is
          shedding this lane while it recovers (see {!Breaker}; never
          produced by a bare engine) *)
  | Failed of Interp.failure
      (** the VM failed; the typed failure says what, where, and whether
          it was transient (retries, if any, were already spent) *)

type outcome = (Obj.t, error) result

type config = {
  workers : int;  (** VM worker domains (each owns an interpreter) *)
  queue_capacity : int;  (** pending-queue bound; beyond it, reject *)
  max_batch : int;  (** flush a bucket at this many requests *)
  max_wait_us : float;  (** ... or when its oldest member waited this long *)
  policy : Bucket.policy;  (** shape-bucketing policy *)
  default_timeout_us : float option;
      (** deadline applied to requests submitted without one *)
  max_retries : int;
      (** per-request retries of {e transient} failures (injected faults
          in transient mode); persistent failures are never retried *)
  retry_backoff_us : float;
      (** base backoff before the first retry; doubles per attempt, with
          a small deterministic jitter *)
  pool_cap_bytes : int option;
      (** per-worker cap on VM storage retained across requests; an
          allocation that would exceed it fails as [Alloc] (see
          [Interp.create]'s [max_pool_bytes]) *)
  warm_hints : int array list;
      (** bucket-bound shapes each worker pre-binds its plan arenas at
          before serving (a restored snapshot's arena hints, so a warm
          restart reaches steady-state memory behaviour on its first
          batch; see [docs/SERVING.md]) *)
}

let default_config =
  {
    workers = 2;
    queue_capacity = 64;
    max_batch = 8;
    max_wait_us = 2_000.0;
    policy = Bucket.default;
    default_timeout_us = None;
    max_retries = 3;
    retry_backoff_us = 200.0;
    pool_cap_bytes = None;
    warm_hints = [];
  }

(* A one-shot result cell (ivar): filled exactly once by the engine,
   awaited by the submitting client. *)
type cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable value : outcome option;
}

type request = {
  input : Obj.t;
  bucket : string;
  submit_s : float;  (** Unix time at submission *)
  deadline_s : float option;
  cell : cell;
}

type ticket = cell

type batch = { b_bucket : string; b_reqs : request list  (** submission order *) }

type t = {
  cfg : config;
  exe : Nimble_vm.Exe.t;
  func : string;
  stats : Stats.t;
  trace : Trace.t option;
  trace_mux : Mutex.t;  (** Trace.t is single-writer; serialize serve spans *)
  autotune : Nimble_codegen.Autotune.t option;
      (** online shape specializer; observed once per executed batch *)
  admission : Admission.t option;
      (** SLO-aware admission controller: consulted (and fed service
          observations) only when the caller attached one *)
  pending : request Squeue.t;
  batches : batch Squeue.t;
  paused : bool Atomic.t;
  mutable batcher : unit Domain.t option;
  mutable workers : unit Domain.t list;
  mutable stopped : bool;  (** set by [shutdown]; guarded by [stop_mux] *)
  stop_mux : Mutex.t;
}

let now () = Unix.gettimeofday ()

(* Fill the one-shot cell; [true] iff this call was the one that filled
   it. The supervisor uses the return to count only requests it actually
   answered (a cell may already hold a result from before the crash). *)
let try_fill (c : cell) (v : outcome) : bool =
  Mutex.lock c.cm;
  let filled =
    if c.value = None then begin
      c.value <- Some v;
      true
    end
    else false
  in
  Condition.broadcast c.cc;
  Mutex.unlock c.cm;
  filled

let fill (c : cell) (v : outcome) = ignore (try_fill c v)

(** Block until the engine completes the ticket's request. *)
let wait (tk : ticket) : outcome =
  Mutex.lock tk.cm;
  while tk.value = None do
    Condition.wait tk.cc tk.cm
  done;
  let v = Option.get tk.value in
  Mutex.unlock tk.cm;
  v

let record_span t ~name ~ts_us ~dur_us args =
  match t.trace with
  | None -> ()
  | Some tr ->
      Mutex.lock t.trace_mux;
      Trace.record tr ~name ~cat:Trace.cat_serve ~ts_us ~dur_us args;
      Mutex.unlock t.trace_mux

let trace_now t =
  match t.trace with
  | None -> 0.0
  | Some tr ->
      Mutex.lock t.trace_mux;
      let v = Trace.now_us tr in
      Mutex.unlock t.trace_mux;
      v

(* ------------------------------ workers ------------------------------ *)

let expired r t_now = match r.deadline_s with Some d -> t_now > d | None -> false

(* Deterministic backoff before retry [attempt] (0-based): exponential in
   the attempt with a small per-worker jitter, so colliding workers
   desynchronize without any global randomness (chaos runs replay). *)
let retry_delay_s t ~attempt ~worker_id =
  let base = t.cfg.retry_backoff_us /. 1e6 in
  let d = base *. float_of_int (1 lsl Stdlib.min attempt 16) in
  let jitter =
    float_of_int (((worker_id * 31) + (attempt * 7)) mod 10) /. 20.0
  in
  d *. (0.9 +. jitter)

let exec_request t vm ctx ~worker_id (r : request) =
  let t_now = now () in
  if expired r t_now then begin
    Stats.record_timeout t.stats;
    fill r.cell (Error Timed_out);
    record_span t ~name:"serve.exec" ~ts_us:(trace_now t) ~dur_us:0.0
      [
        ("bucket", Trace.Str r.bucket);
        ("worker", Trace.Int worker_id);
        ("outcome", Trace.Str "timeout");
      ]
  end
  else begin
    let ts_us = trace_now t in
    (* retry transiently-failed invocations with bounded, deadline-aware
       exponential backoff; persistent and undiagnosed failures surface
       immediately. Exceptions (Preempted, configuration errors) escape
       to the worker supervisor. *)
    let rec attempt_exec attempt =
      match Interp.invoke_result ~func:t.func ~ctx vm [ r.input ] with
      | Ok result -> Ok result
      | Error fl
        when fl.Interp.fail_transient && attempt < t.cfg.max_retries ->
          let delay = retry_delay_s t ~attempt ~worker_id in
          let fits_deadline =
            match r.deadline_s with
            | Some d -> now () +. delay <= d
            | None -> true
          in
          if not fits_deadline then Error fl
          else begin
            Stats.record_retry t.stats;
            record_span t ~name:"serve.retry" ~ts_us:(trace_now t)
              ~dur_us:(delay *. 1e6)
              [
                ("bucket", Trace.Str r.bucket);
                ("worker", Trace.Int worker_id);
                ("attempt", Trace.Int (attempt + 1));
                ("kind", Trace.Str (Interp.kind_name fl.Interp.fail_kind));
              ];
            Unix.sleepf delay;
            attempt_exec (attempt + 1)
          end
      | Error fl -> Error fl
    in
    let outcome =
      match attempt_exec 0 with
      | Ok result -> Ok result
      | Error fl -> Error (Failed fl)
    in
    let done_s = now () in
    (match outcome with
    | Ok _ ->
        Stats.record_complete t.stats ~latency_us:((done_s -. r.submit_s) *. 1e6);
        (* feed the SLO admission estimator with this request's worker
           occupancy (execution only, not queueing: the estimator scales
           it by queue depth itself) *)
        Option.iter
          (fun adm -> Admission.observe adm ~service_us:((done_s -. t_now) *. 1e6))
          t.admission
    | Error (Failed fl) ->
        Stats.record_failure t.stats ~kind:(Interp.kind_name fl.Interp.fail_kind);
        record_span t ~name:"serve.fail" ~ts_us:(trace_now t) ~dur_us:0.0
          [
            ("bucket", Trace.Str r.bucket);
            ("worker", Trace.Int worker_id);
            ("kind", Trace.Str (Interp.kind_name fl.Interp.fail_kind));
            ("transient", Trace.Bool fl.Interp.fail_transient);
            ("msg", Trace.Str fl.Interp.fail_msg);
          ]
    | Error _ -> Stats.record_error t.stats);
    fill r.cell outcome;
    record_span t ~name:"serve.exec" ~ts_us ~dur_us:(trace_now t -. ts_us)
      [
        ("bucket", Trace.Str r.bucket);
        ("worker", Trace.Int worker_id);
        ( "outcome",
          Trace.Str (match outcome with Ok _ -> "ok" | Error _ -> "error") );
      ]
  end

let worker_main t worker_id () =
  (* one interpreter and one execution context per worker: private
     storage arenas and a private register frame, both reused across
     every request this worker ever runs *)
  let fresh_state () =
    (Interp.create ?max_pool_bytes:t.cfg.pool_cap_bytes t.exe,
     Interp.context ())
  in
  let state = ref (fresh_state ()) in
  let pin = t.cfg.workers > 1 in
  (* pre-bind plan arenas at every snapshot-restored bucket bound, so the
     first served batch already reuses a warm arena instead of growing one *)
  let warm_from_hints vm =
    List.iter
      (fun dims ->
        ignore
          (Interp.warm_arenas ~func:t.func vm (fun i ->
               if i = 0 then Some dims else None)))
      t.cfg.warm_hints
  in
  warm_from_hints (fst !state);
  (* the bucket key string ("8x64") is the bucket's upper-bound shape;
     parse it back so the worker can warm its persistent plan arenas at
     that bound before the batch runs *)
  let bucket_dims key =
    match
      List.map int_of_string (String.split_on_char 'x' key)
    with
    | dims -> Some (Array.of_list dims)
    | exception _ -> None
  in
  let warm_bucket vm (b : batch) =
    match bucket_dims b.b_bucket with
    | None -> ()
    | Some dims ->
        let ts_us = trace_now t in
        let bound =
          Interp.warm_arenas ~func:t.func vm (fun i ->
              if i = 0 then Some dims else None)
        in
        if bound > 0 then
          record_span t ~name:"serve.arena_bind" ~ts_us
            ~dur_us:(trace_now t -. ts_us)
            [
              ("bucket", Trace.Str b.b_bucket);
              ("worker", Trace.Int worker_id);
              ("plans", Trace.Int bound);
            ]
  in
  let run_batch (b : batch) =
    Fault.check "worker_loop";
    let vm, ctx = !state in
    let ts_us = trace_now t in
    let frames0 = Interp.frame_reuses ctx in
    let prof = Interp.profiler vm in
    let hits0 = prof.Nimble_vm.Profiler.pool_hits in
    let allocs0 = Nimble_vm.Profiler.allocs prof in
    let rebinds0 = prof.Nimble_vm.Profiler.arena_rebinds in
    warm_bucket vm b;
    List.iter (exec_request t vm ctx ~worker_id) b.b_reqs;
    (* one hotness observation per executed batch: cheap (an atomic
       increment), and every [scan_interval]-th call walks the dispatch
       registry for hot extents to re-tune in the background *)
    Option.iter Nimble_codegen.Autotune.observe t.autotune;
    Stats.record_reuse t.stats
      ~frame_reuses:(Interp.frame_reuses ctx - frames0)
      ~arena_hits:(prof.Nimble_vm.Profiler.pool_hits - hits0)
      ~allocs:(Nimble_vm.Profiler.allocs prof - allocs0)
      ~arena_reuses:(prof.Nimble_vm.Profiler.arena_rebinds - rebinds0);
    record_span t ~name:"serve.batch_exec" ~ts_us ~dur_us:(trace_now t -. ts_us)
      [
        ("bucket", Trace.Str b.b_bucket);
        ("size", Trace.Int (List.length b.b_reqs));
        ("worker", Trace.Int worker_id);
      ]
  in
  (* supervisor: a batch whose execution escapes the typed channel (an
     injected worker_loop fault, Preempted, a configuration error) would
     otherwise kill this domain and strand its batch — and, with it, every
     client blocked in [wait]. Answer whatever the dead run left unfilled,
     rebuild the interpreter (its pool may be mid-mutation), and keep
     consuming. *)
  let supervise_batch (b : batch) =
    try
      if pin then Parallel.pinned_sequential (fun () -> run_batch b)
      else run_batch b
    with e ->
      let msg =
        match e with
        | Fault.Injected { point; _ } -> Fmt.str "injected fault at %s" point
        | e -> Printexc.to_string e
      in
      let fl = Interp.internal_failure ~func:t.func msg in
      List.iter
        (fun r ->
          if try_fill r.cell (Error (Failed fl)) then
            Stats.record_failure t.stats
              ~kind:(Interp.kind_name fl.Interp.fail_kind))
        b.b_reqs;
      Stats.record_worker_restart t.stats;
      record_span t ~name:"serve.worker_restart" ~ts_us:(trace_now t)
        ~dur_us:0.0
        [ ("worker", Trace.Int worker_id); ("reason", Trace.Str msg) ];
      state := fresh_state ();
      warm_from_hints (fst !state)
  in
  let rec loop () =
    match Squeue.pop t.batches with
    | None -> ()
    | Some b ->
        supervise_batch b;
        loop ()
  in
  loop ()

(* --------------------------- batch former --------------------------- *)

(* Per-bucket accumulation: requests are appended in submission order
   and flushed as one batch when full or due. *)
type slot = { first_s : float; mutable rev_reqs : request list; mutable count : int }

let batcher_main t () =
  let stash : (string, slot) Hashtbl.t = Hashtbl.create 8 in
  let flush bucket slot =
    Hashtbl.remove stash bucket;
    (* re-check deadlines at flush time: a request can expire while
       stashed (waiting for batch-mates), not only while queued — without
       this it would be pushed to a worker and execute stale *)
    let t_now = now () in
    let live, dead =
      List.partition (fun r -> not (expired r t_now)) (List.rev slot.rev_reqs)
    in
    (* attribution matters for the fleet bench: a request dying here was
       shed before any worker touched it, which is cheap; one dying at
       worker pickup wasted a queue slot. Separate counters, same
       client-visible outcome. *)
    List.iter
      (fun r ->
        Stats.record_shed_flush t.stats;
        fill r.cell (Error Timed_out))
      dead;
    if live <> [] then begin
      Stats.record_batch t.stats ~size:(List.length live);
      record_span t ~name:"serve.batch" ~ts_us:(trace_now t) ~dur_us:0.0
        [ ("bucket", Trace.Str bucket); ("size", Trace.Int (List.length live)) ];
      (* blocking push: when workers fall behind, backpressure propagates
         here, the pending queue fills, and admission starts rejecting *)
      ignore (Squeue.push t.batches { b_bucket = bucket; b_reqs = live })
    end
  in
  let flush_due ~all =
    let due_limit = now () -. (t.cfg.max_wait_us /. 1e6) in
    let picks =
      Hashtbl.fold
        (fun b s acc -> if all || s.first_s <= due_limit then (b, s) :: acc else acc)
        stash []
    in
    (* flush oldest-first so FIFO order across buckets is approximated *)
    List.iter
      (fun (b, s) -> flush b s)
      (List.sort (fun (_, a) (_, b) -> Float.compare a.first_s b.first_s) picks)
  in
  let accept r =
    Stats.observe_queue_depth t.stats (Squeue.length t.pending + 1);
    let slot =
      match Hashtbl.find_opt stash r.bucket with
      | Some s -> s
      | None ->
          let s = { first_s = now (); rev_reqs = []; count = 0 } in
          Hashtbl.replace stash r.bucket s;
          s
    in
    slot.rev_reqs <- r :: slot.rev_reqs;
    slot.count <- slot.count + 1;
    if slot.count >= t.cfg.max_batch then flush r.bucket slot
  in
  let running = ref true in
  while !running do
    if Atomic.get t.paused then Unix.sleepf 0.001
    else if Hashtbl.length stash = 0 then begin
      (* nothing in flight: block for the next request (or drain signal) *)
      match Squeue.pop t.pending with
      | Some r -> accept r
      | None ->
          running := false (* closed and drained *)
    end
    else begin
      (match Squeue.try_pop t.pending with
      | Some r -> accept r
      | None ->
          if Squeue.closed t.pending then flush_due ~all:true
          else (* bounded wait for stragglers, then re-check deadlines *)
            Unix.sleepf (Float.min 0.0002 (t.cfg.max_wait_us /. 1e6 /. 4.0)));
      flush_due ~all:false
    end
  done;
  flush_due ~all:true;
  Squeue.close t.batches

(* ------------------------------ lifecycle ----------------------------- *)

(** Start an engine over a linked executable: spawns the batch former
    and [config.workers] VM worker domains. @param func the VM function
    served (default ["main"]). @param trace record [serve.*] spans into
    this recorder (shared with nothing else; the engine serializes its
    own writes). @param autotune attach an online shape specializer: the
    engine observes it once per executed batch (driving its hotness
    scans) and records a [vm.retune] span for every live install. The
    caller keeps ownership — drain/shutdown it after {!shutdown}.
    @param admission attach an SLO-aware admission controller: requests
    whose deadline provably cannot be met are refused as [Error Shed] at
    submission, and the engine feeds the controller its per-request
    service-time observations. *)
let create ?(config = default_config) ?trace ?autotune ?admission
    ?(func = "main") exe =
  if config.workers < 1 then Fmt.invalid_arg "Engine.create: workers %d" config.workers;
  if config.max_batch < 1 then Fmt.invalid_arg "Engine.create: max_batch %d" config.max_batch;
  let t =
    {
      cfg = config;
      exe;
      func;
      stats = Stats.create ();
      trace;
      trace_mux = Mutex.create ();
      autotune;
      admission;
      pending = Squeue.create ~capacity:config.queue_capacity;
      batches = Squeue.create ~capacity:(Stdlib.max config.workers (config.queue_capacity / Stdlib.max 1 config.max_batch) + 1);
      paused = Atomic.make false;
      batcher = None;
      workers = [];
      stopped = false;
      stop_mux = Mutex.create ();
    }
  in
  (* every completed install becomes a [vm.retune] span: the swap itself
     is invisible to clients (outputs are bitwise-equal), so the trace is
     the only place a re-tune shows up *)
  Option.iter
    (fun au ->
      Nimble_codegen.Autotune.set_notify au (fun (i : Nimble_codegen.Autotune.install) ->
          record_span t ~name:"vm.retune" ~ts_us:(trace_now t)
            ~dur_us:(i.Nimble_codegen.Autotune.in_seconds *. 1e6)
            [
              ("kernel", Trace.Str i.Nimble_codegen.Autotune.in_kernel);
              ("extent", Trace.Int i.Nimble_codegen.Autotune.in_extent);
              ("tile_m", Trace.Int i.Nimble_codegen.Autotune.in_tile_m);
              ( "hit_rate_before",
                Trace.Str
                  (Fmt.str "%.3f" i.Nimble_codegen.Autotune.in_hit_rate_before) );
            ]))
    autotune;
  t.batcher <- Some (Domain.spawn (batcher_main t));
  t.workers <-
    List.init config.workers (fun i -> Domain.spawn (worker_main t i));
  t

(** Submit one request. [shape] is the bucketing shape (for a sequence
    model, [[| seq |]]); [input] is the VM argument executed {e as is} —
    it is never padded. Returns a ticket to {!wait} on, or
    [Error Rejected] when the pending queue is full (backpressure).
    @param timeout_us per-request deadline from now, overriding
    [config.default_timeout_us]. *)
let submit ?timeout_us t ~shape (input : Obj.t) : (ticket, error) result =
  Stats.record_submit t.stats;
  let submit_s = now () in
  let timeout =
    match timeout_us with Some _ -> timeout_us | None -> t.cfg.default_timeout_us
  in
  (* SLO-aware admission: refuse work that provably cannot meet its
     deadline given the queue ahead of it and the observed service-time
     estimate — before it costs a queue slot or a worker pickup *)
  let slo_ok =
    match t.admission with
    | None -> true
    | Some adm ->
        Admission.admit adm ~queue_depth:(Squeue.length t.pending)
          ~workers:t.cfg.workers ~deadline_us:timeout
  in
  if not slo_ok then begin
    Stats.record_shed_admission t.stats;
    Error Shed
  end
  else
  let r =
    {
      input;
      bucket = Bucket.key_string t.cfg.policy shape;
      submit_s;
      deadline_s = Option.map (fun us -> submit_s +. (us /. 1e6)) timeout;
      cell = { cm = Mutex.create (); cc = Condition.create (); value = None };
    }
  in
  (* an injected queue_push fault is a refusal, not a crash: the request
     was never accepted, so it surfaces exactly like a full queue *)
  let accepted =
    match Squeue.try_push t.pending r with
    | ok -> ok
    | exception Fault.Injected _ -> false
  in
  if accepted then Ok r.cell
  else begin
    Stats.record_reject t.stats;
    Error Rejected
  end

(** {!submit} then {!wait}: the blocking convenience for clients that
    want one in-flight request. *)
let run ?timeout_us t ~shape input =
  match submit ?timeout_us t ~shape input with
  | Error e -> Error e
  | Ok tk -> wait tk

(** Stop forming batches (the pending queue keeps filling — admission
    starts rejecting once it is full). For tests and drain drills. *)
let pause t = Atomic.set t.paused true

(** Resume batch formation after {!pause}. *)
let resume t = Atomic.set t.paused false

(** Close admission, drain all in-flight work through the workers, join
    every engine domain. Idempotent; concurrent calls are serialized. *)
let shutdown t =
  Mutex.lock t.stop_mux;
  let first = not t.stopped in
  t.stopped <- true;
  Mutex.unlock t.stop_mux;
  if first then begin
    Atomic.set t.paused false;
    Squeue.close t.pending;
    Stats.observe_queue_depth t.stats (Squeue.high_water t.pending);
    Option.iter Domain.join t.batcher;
    t.batcher <- None;
    List.iter Domain.join t.workers;
    t.workers <- []
  end

(** Frozen statistics snapshot (callable while serving). *)
let stats t =
  Stats.observe_queue_depth t.stats (Squeue.high_water t.pending);
  Stats.summary t.stats

(** {!stats} as the [server] JSON section for [nimble-profile/v1]. *)
let server_json t = Stats.summary_to_json (stats t)

(** The engine's configuration (as given to {!create}). *)
let config t = t.cfg
