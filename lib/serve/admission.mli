(** SLO-aware admission control: refuse a request at the door when its
    deadline provably cannot be met given current queue depth and the
    observed service-time EWMA — shedding before execution instead of
    timing out after it (admission math: [docs/SERVING.md]).

    With no observations yet the estimate is zero and everything is
    admitted; decisions are deterministic given the observation
    sequence. *)

type config = {
  alpha : float;  (** EWMA smoothing factor, above 0 and at most 1; higher = jumpier *)
  margin : float;
      (** safety multiplier on the wait estimate; below 1.0 admits
          optimistically, above sheds conservatively *)
}

(** Smooth over ~10 recent requests, shed at 1x the estimate. *)
val default_config : config

type t

(** A controller with no observations (admits everything).
    @raise Invalid_argument on an alpha outside its range or a
    non-positive margin. *)
val create : ?config:config -> unit -> t

(** Fold one completed request's service time (µs) into the EWMA. *)
val observe : t -> service_us:float -> unit

(** Decide one submission: [true] = admit. [deadline_us] is the
    request's remaining budget ([None] = no deadline, always admitted);
    [queue_depth] the pending requests ahead of it; [workers] the shard
    pool draining that queue. *)
val admit : t -> queue_depth:int -> workers:int -> deadline_us:float option -> bool

(** The current service-time estimate in µs (0 before any observation). *)
val estimate_us : t -> float

(** Completed-request observations folded in so far. *)
val observations : t -> int

(** Submissions this controller has refused. *)
val shed : t -> int

(** The controller's configuration (as given to {!create}). *)
val config : t -> config
