(** Warm executable cache: compile once per model, serve forever.

    A cold load runs the full deployment path — compile the IR module,
    {!Nimble_vm.Serialize.to_bytes} it, decode the bytes back, and
    relink the packed kernels by name — exactly what a server restoring
    a [.nimble] artifact from disk does, so the serialized format stays
    load-bearing in the serving path (and is covered by
    [test/test_serve.ml]). Warm loads return the cached, already-linked
    executable. An executable is immutable after linking (bytecode,
    constants and packed implementations are only read), so many VM
    workers can share one instance across domains; each worker keeps its
    own {!Nimble_vm.Interp.t} for mutable state. *)

module Nimble = Nimble_compiler.Nimble

type entry = { exe : Nimble_vm.Exe.t; bytes : int  (** serialized size *) }

type t = {
  mux : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  { mux = Mutex.create (); entries = Hashtbl.create 4; hits = 0; misses = 0 }

let locked t f =
  Mutex.lock t.mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mux) f

(** Decode-and-verify with a bounded retry of {e transient} injected
    faults: the ["deserialize"] fault point models a flaky artifact read
    (a torn NFS page, a racing writer), which a loader should retry a few
    times before giving up. Persistent faults propagate immediately, as
    does [Nimble_analysis.Verifier.Verify_error] — a decodable executable
    that fails bytecode verification is corrupt, not flaky. *)
let rec of_bytes_retrying ?(attempt = 0) bytes =
  try Nimble_analysis.Verifier.of_bytes bytes with
  | Nimble_fault.Fault.Injected { mode = Nimble_fault.Fault.Transient; _ }
    when attempt < 3 ->
      of_bytes_retrying ~attempt:(attempt + 1) bytes

(** Replay the executable's persisted tune table (NMBLEXE4) into the live
    dispatch tables: each decision re-installs its tuned kernel via
    {!Nimble_codegen.Dispatch.install_tuned}, so a warm restart relinks
    pre-specialized and the hotness scanner (which skips already-tuned
    extents) never re-tunes them. Decisions naming kernels with no
    registered dispatcher (e.g. dispatch compiled off) are ignored — the
    table is advice, not an obligation. *)
let apply_tunes (exe : Nimble_vm.Exe.t) : int =
  Array.fold_left
    (fun applied (tn : Nimble_vm.Exe.tune) ->
      match Nimble_codegen.Dispatch.find ~name:tn.Nimble_vm.Exe.tn_kernel with
      | Some d ->
          Nimble_codegen.Dispatch.install_tuned d ~extent:tn.Nimble_vm.Exe.tn_extent
            ~tile_m:tn.Nimble_vm.Exe.tn_tile_m;
          applied + 1
      | None -> applied)
    0 exe.Nimble_vm.Exe.tunes

(** Capture the live dispatch tables' installed tune decisions into the
    executable's tune table, so the next {!Nimble_vm.Serialize.to_bytes}
    persists them (the checkpoint half of the warm-restart loop). *)
let persist_tunes (exe : Nimble_vm.Exe.t) : int =
  let tunes =
    Array.to_list exe.Nimble_vm.Exe.packed_names
    |> List.concat_map (fun (name, kind) ->
           match kind with
           | `Shape_func -> []
           | `Kernel -> (
               match Nimble_codegen.Dispatch.find ~name with
               | None -> []
               | Some d ->
                   List.map
                     (fun (extent, tile_m) ->
                       { Nimble_vm.Exe.tn_kernel = name; tn_extent = extent;
                         tn_tile_m = tile_m })
                     (Nimble_codegen.Dispatch.tuned_decisions d)))
  in
  Nimble_vm.Exe.set_tunes exe (Array.of_list tunes);
  List.length tunes

(** [load t ~name ~build] returns the linked executable for [name],
    compiling (and serialize/deserialize round-tripping) [build ()] on
    the first request only. The build runs under the cache lock, so
    concurrent cold loads of the same model compile once.
    @param options compiler options for the cold build (guards on/off,
    dispatch thresholds); ignored on warm hits. *)
let load ?options t ~name ~(build : unit -> Nimble_ir.Irmod.t) :
    Nimble_vm.Exe.t =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some e ->
          t.hits <- t.hits + 1;
          e.exe
      | None ->
          t.misses <- t.misses + 1;
          let m = build () in
          let compiled = Nimble.compile ?options m in
          (* the deployment round trip: portable bytes, then relink the
             platform kernels by name (with the same codegen options, so
             relinked dispatch tables match the compiled ones) *)
          let bytes = Nimble_vm.Serialize.to_bytes compiled in
          let exe = of_bytes_retrying bytes in
          let link_options =
            Option.map
              (fun (o : Nimble.options) ->
                {
                  Nimble_compiler.Emitter.dense_dispatch = o.Nimble.dense_dispatch;
                  profile_extern = o.Nimble.profile_extern;
                  guards = o.Nimble.runtime_guards;
                })
              options
          in
          List.iter (Nimble_vm.Exe.link exe)
            (Nimble_compiler.Emitter.link_table ?options:link_options m);
          (* warm-restart the persisted tune decisions into the freshly
             linked dispatch tables *)
          ignore (apply_tunes exe);
          Hashtbl.replace t.entries name { exe; bytes = String.length bytes };
          exe)

(** Warm loads served since creation. *)
let hits t = locked t (fun () -> t.hits)

(** Cold loads (compile + round trip) performed since creation. *)
let misses t = locked t (fun () -> t.misses)

(** Serialized size in bytes of a cached model, if present. *)
let serialized_bytes t ~name =
  locked t (fun () ->
      Option.map (fun e -> e.bytes) (Hashtbl.find_opt t.entries name))
