(** Warm executable cache: compile once per model, serve forever.

    A cold load runs the full deployment path — compile the IR module,
    {!Nimble_vm.Serialize.to_bytes} it, decode the bytes back, and
    relink the packed kernels by name — exactly what a server restoring
    a [.nimble] artifact from disk does, so the serialized format stays
    load-bearing in the serving path (and is covered by
    [test/test_serve.ml]). Warm loads return the cached, already-linked
    executable. An executable is immutable after linking (bytecode,
    constants and packed implementations are only read), so many VM
    workers can share one instance across domains; each worker keeps its
    own {!Nimble_vm.Interp.t} for mutable state. *)

module Nimble = Nimble_compiler.Nimble

type entry = { exe : Nimble_vm.Exe.t; bytes : int  (** serialized size *) }

type t = {
  mux : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  impls : (string, Nimble_vm.Exe.packed) Hashtbl.t;
      (** link registry: packed implementations captured at first link,
          keyed by packed name — what {!restore} relinks from, so a warm
          restart never recompiles *)
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    mux = Mutex.create ();
    entries = Hashtbl.create 4;
    impls = Hashtbl.create 16;
    hits = 0;
    misses = 0;
  }

let locked t f =
  Mutex.lock t.mux;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mux) f

(** Decode-and-verify with a bounded retry of {e transient} injected
    faults: the ["deserialize"] fault point models a flaky artifact read
    (a torn NFS page, a racing writer), which a loader should retry a few
    times before giving up. Persistent faults propagate immediately, as
    does [Nimble_analysis.Verifier.Verify_error] — a decodable executable
    that fails bytecode verification is corrupt, not flaky. *)
let rec of_bytes_retrying ?(attempt = 0) bytes =
  try Nimble_analysis.Verifier.of_bytes bytes with
  | Nimble_fault.Fault.Injected { mode = Nimble_fault.Fault.Transient; _ }
    when attempt < 3 ->
      of_bytes_retrying ~attempt:(attempt + 1) bytes

(** Replay the executable's persisted tune table (NMBLEXE4) into the live
    dispatch tables: each decision re-installs its tuned kernel via
    {!Nimble_codegen.Dispatch.install_tuned}, so a warm restart relinks
    pre-specialized and the hotness scanner (which skips already-tuned
    extents) never re-tunes them. Decisions naming kernels with no
    registered dispatcher (e.g. dispatch compiled off) are ignored — the
    table is advice, not an obligation. *)
let apply_tunes (exe : Nimble_vm.Exe.t) : int =
  Array.fold_left
    (fun applied (tn : Nimble_vm.Exe.tune) ->
      match Nimble_codegen.Dispatch.find ~name:tn.Nimble_vm.Exe.tn_kernel with
      | Some d ->
          Nimble_codegen.Dispatch.install_tuned d ~extent:tn.Nimble_vm.Exe.tn_extent
            ~tile_m:tn.Nimble_vm.Exe.tn_tile_m;
          applied + 1
      | None -> applied)
    0 exe.Nimble_vm.Exe.tunes

(** Capture the live dispatch tables' installed tune decisions into the
    executable's tune table, so the next {!Nimble_vm.Serialize.to_bytes}
    persists them (the checkpoint half of the warm-restart loop). *)
let persist_tunes (exe : Nimble_vm.Exe.t) : int =
  let tunes =
    Array.to_list exe.Nimble_vm.Exe.packed_names
    |> List.concat_map (fun (name, kind) ->
           match kind with
           | `Shape_func -> []
           | `Kernel -> (
               match Nimble_codegen.Dispatch.find ~name with
               | None -> []
               | Some d ->
                   List.map
                     (fun (extent, tile_m) ->
                       { Nimble_vm.Exe.tn_kernel = name; tn_extent = extent;
                         tn_tile_m = tile_m })
                     (Nimble_codegen.Dispatch.tuned_decisions d)))
  in
  Nimble_vm.Exe.set_tunes exe (Array.of_list tunes);
  List.length tunes

(** [load t ~name ~build] returns the linked executable for [name],
    compiling (and serialize/deserialize round-tripping) [build ()] on
    the first request only. The build runs under the cache lock, so
    concurrent cold loads of the same model compile once.
    @param options compiler options for the cold build (guards on/off,
    dispatch thresholds); ignored on warm hits. *)
let load ?options t ~name ~(build : unit -> Nimble_ir.Irmod.t) :
    Nimble_vm.Exe.t =
  locked t (fun () ->
      match Hashtbl.find_opt t.entries name with
      | Some e ->
          t.hits <- t.hits + 1;
          e.exe
      | None ->
          t.misses <- t.misses + 1;
          let m = build () in
          let compiled = Nimble.compile ?options m in
          (* the deployment round trip: portable bytes, then relink the
             platform kernels by name (with the same codegen options, so
             relinked dispatch tables match the compiled ones) *)
          let bytes = Nimble_vm.Serialize.to_bytes compiled in
          let exe = of_bytes_retrying bytes in
          let link_options =
            Option.map
              (fun (o : Nimble.options) ->
                {
                  Nimble_compiler.Emitter.dense_dispatch = o.Nimble.dense_dispatch;
                  profile_extern = o.Nimble.profile_extern;
                  guards = o.Nimble.runtime_guards;
                })
              options
          in
          let table =
            Nimble_compiler.Emitter.link_table ?options:link_options m
          in
          List.iter (Nimble_vm.Exe.link exe) table;
          (* capture the platform implementations so a later {!restore}
             can relink a snapshot without recompiling *)
          List.iter
            (fun (p : Nimble_vm.Exe.packed) ->
              Hashtbl.replace t.impls p.Nimble_vm.Exe.packed_name p)
            table;
          (* warm-restart the persisted tune decisions into the freshly
             linked dispatch tables *)
          ignore (apply_tunes exe);
          Hashtbl.replace t.entries name { exe; bytes = String.length bytes };
          exe)

(** Warm loads served since creation. *)
let hits t = locked t (fun () -> t.hits)

(** Cold loads (compile + round trip) performed since creation. *)
let misses t = locked t (fun () -> t.misses)

(** Serialized size in bytes of a cached model, if present. *)
let serialized_bytes t ~name =
  locked t (fun () ->
      Option.map (fun e -> e.bytes) (Hashtbl.find_opt t.entries name))

(** Capture a linked executable's packed implementations into the link
    registry (what {!restore} relinks from). {!load} does this
    automatically; call this for executables linked outside the cache.
    Returns how many implementations were (re)registered. *)
let register_impls t (exe : Nimble_vm.Exe.t) : int =
  locked t (fun () ->
      Array.fold_left
        (fun n p ->
          match p with
          | Some (p : Nimble_vm.Exe.packed) ->
              Hashtbl.replace t.impls p.Nimble_vm.Exe.packed_name p;
              n + 1
          | None -> n)
        0 exe.Nimble_vm.Exe.packed)

(* --------------------------- snapshots ---------------------------- *)

module Json = Nimble_vm.Json

(** On-disk snapshot format version (the manifest [schema] member). *)
let snapshot_schema = "nimble-snapshot/v1"

(** Run [f] behind the ["snapshot_io"] fault point, retrying injected
    {e transient} faults a bounded number of times — snapshot I/O models
    a flaky disk, and both halves of the warm-restart loop should survive
    a torn read/write. Persistent faults propagate. *)
let rec io_retrying ?(attempt = 0) f =
  match
    Nimble_fault.Fault.check "snapshot_io";
    f ()
  with
  | v -> v
  | exception
      Nimble_fault.Fault.Injected { mode = Nimble_fault.Fault.Transient; _ }
    when attempt < 3 ->
      io_retrying ~attempt:(attempt + 1) f

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ when Sys.file_exists d -> ())
    end
  in
  go dir

(** [model.nmblexe] file name for a model, with anything outside
    [A-Za-z0-9._-] mapped to [_] so model names cannot escape [dir]. *)
let snapshot_file name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> c
      | _ -> '_')
    name
  ^ ".nmblexe"

let write_file_atomic path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
      output_string oc contents);
  Sys.rename tmp path

(* ---- generation rotation: each snapshot lands in its own gen-N
   subdirectory and the top-level manifest is renamed over last, so a
   reader always sees a complete generation; older generations are
   garbage-collected after the manifest switch. *)

let generation_of_dirname name =
  if String.length name > 4 && String.sub name 0 4 = "gen-" then
    int_of_string_opt (String.sub name 4 (String.length name - 4))
  else None

let generation_dirname g = Printf.sprintf "gen-%d" g

(** Generation numbers present under [dir], unsorted. *)
let generations ~dir : int list =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter_map (fun n ->
           match generation_of_dirname n with
           | Some g when Sys.is_directory (Filename.concat dir n) -> Some g
           | _ -> None)
  else []

(* Best-effort removal of one generation directory: a crashed GC leaves
   at worst an extra stale generation, never a torn current one. *)
let remove_generation ~dir g =
  let gdir = Filename.concat dir (generation_dirname g) in
  (try
     Array.iter
       (fun f -> try Sys.remove (Filename.concat gdir f) with Sys_error _ -> ())
       (Sys.readdir gdir)
   with Sys_error _ -> ());
  try Sys.rmdir gdir with Sys_error _ -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
      really_input_string ic (in_channel_length ic))

(** Checkpoint every cached model to [dir]: for each entry, capture the
    live tune decisions ({!persist_tunes}), serialize to
    [<name>.nmblexe], and record it (with its [hints] arena-bound dims,
    if any) in a versioned [MANIFEST.json]. Each file is written to a
    temp name and renamed, so a crashed snapshot never leaves a torn
    manifest. All I/O passes the ["snapshot_io"] fault point (transient
    faults retried). Returns how many models were written. *)
let snapshot ?(hints = []) ?(keep = 2) t ~dir : int =
  if keep < 1 then invalid_arg "Cache.snapshot: keep must be >= 1";
  locked t (fun () ->
      let prior = generations ~dir in
      let gen = 1 + List.fold_left max 0 prior in
      mkdir_p (Filename.concat dir (generation_dirname gen));
      let models =
        Hashtbl.fold (fun name e acc -> (name, e) :: acc) t.entries []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let entries =
        List.map
          (fun (name, e) ->
            let tunes = persist_tunes e.exe in
            let bytes = Nimble_vm.Serialize.to_bytes e.exe in
            let file =
              Filename.concat (generation_dirname gen) (snapshot_file name)
            in
            io_retrying (fun () ->
                write_file_atomic (Filename.concat dir file) bytes);
            let arena_hints =
              match List.assoc_opt name hints with
              | None -> []
              | Some dims ->
                  List.map
                    (fun d ->
                      Json.List
                        (Array.to_list (Array.map (fun i -> Json.Int i) d)))
                    dims
            in
            Json.Obj
              [
                ("name", Json.String name);
                ("file", Json.String file);
                ("bytes", Json.Int (String.length bytes));
                ("tunes", Json.Int tunes);
                ("arena_hints", Json.List arena_hints);
              ])
          models
      in
      let manifest =
        Json.Obj
          [
            ("schema", Json.String snapshot_schema);
            ("generation", Json.Int gen);
            ("models", Json.List entries);
          ]
      in
      (* the rename is the commit point: a crash before it leaves the old
         manifest (and its generation) fully intact *)
      io_retrying (fun () ->
          write_file_atomic
            (Filename.concat dir "MANIFEST.json")
            (Json.to_string_pretty manifest));
      (* GC: every generation older than the newest [keep] is dead — no
         manifest can reference it anymore *)
      let kept =
        List.filteri (fun i _ -> i < keep)
          (List.sort (fun a b -> compare b a) (gen :: prior))
      in
      List.iter
        (fun g -> if not (List.mem g kept) then remove_generation ~dir g)
        prior;
      List.length models)

(** One model brought back by {!restore}. *)
type restored = {
  r_name : string;
  r_exe : Nimble_vm.Exe.t;  (** decoded, verified, relinked, tunes applied *)
  r_bytes : int;  (** on-disk serialized size *)
  r_tunes_applied : int;  (** tune decisions replayed into dispatch *)
  r_arena_hints : int array list;
      (** arena-bound dims recorded at snapshot time — feed these to the
          engine's [warm_hints] to pre-warm arenas before traffic *)
}

(** Warm-restart every model recorded in [dir]'s manifest: read and
    decode each [.nmblexe] (bytecode-verified; transient ["snapshot_io"] /
    ["deserialize"] faults retried), relink its packed functions from the
    in-process link registry — {e no recompilation} — replay its tune
    table, and replace the cache entry. The registry must already hold
    every implementation the snapshot names (populate it with {!load} or
    {!register_impls}).
    @raise Failure on a missing/ill-versioned manifest or an
    implementation absent from the registry; [Sys_error] /
    [Json.Parse_error] / verifier errors propagate. *)
let restore t ~dir : restored list =
  locked t (fun () ->
      let manifest_path = Filename.concat dir "MANIFEST.json" in
      if not (Sys.file_exists manifest_path) then
        failwith ("no snapshot manifest at " ^ manifest_path);
      let manifest =
        Json.of_string (io_retrying (fun () -> read_file manifest_path))
      in
      (match Json.member "schema" manifest with
      | Some (Json.String s) when s = snapshot_schema -> ()
      | Some (Json.String s) ->
          failwith
            (Printf.sprintf "snapshot schema %S (expected %S)" s
               snapshot_schema)
      | _ -> failwith "snapshot manifest has no schema member");
      let models =
        Json.to_list_exn (Json.member_exn "models" manifest)
      in
      List.map
        (fun m ->
          let name = Json.to_string_exn (Json.member_exn "name" m) in
          let file = Json.to_string_exn (Json.member_exn "file" m) in
          let bytes =
            io_retrying (fun () -> read_file (Filename.concat dir file))
          in
          let exe = of_bytes_retrying bytes in
          Array.iter
            (fun (pname, _kind) ->
              match Hashtbl.find_opt t.impls pname with
              | Some impl -> Nimble_vm.Exe.link exe impl
              | None ->
                  failwith
                    (Printf.sprintf
                       "snapshot restore of %s: no registered implementation \
                        for %s (load the model once, or register_impls)"
                       name pname))
            exe.Nimble_vm.Exe.packed_names;
          let applied = apply_tunes exe in
          let arena_hints =
            match Json.member "arena_hints" m with
            | Some (Json.List hs) ->
                List.map
                  (fun h ->
                    Json.to_list_exn h |> List.map Json.to_int_exn
                    |> Array.of_list)
                  hs
            | _ -> []
          in
          Hashtbl.replace t.entries name
            { exe; bytes = String.length bytes };
          {
            r_name = name;
            r_exe = exe;
            r_bytes = String.length bytes;
            r_tunes_applied = applied;
            r_arena_hints = arena_hints;
          })
        models)
