(** Shape buckets: the grouping key of the dynamic batcher.

    A bucket maps a request's (dynamic) shape to the scheduling class it
    shares with similar requests. Two requests in the same bucket ride in
    the same batch on the same VM worker, back to back, so they hit the
    same warm state: the worker's storage arenas (keyed by allocation
    site and byte size) and register frame are already the right size.

    Numerics are never affected by bucketing. The bucket shape is an
    {e upper bound} in the sense of the paper's §4.3 memory planning — it
    sizes and collocates resources — but every kernel still executes at
    the request's exact runtime shape (the VM resolves [Any] dimensions
    per request). Padding therefore changes scheduling and memory reuse,
    never a single output bit; the dedicated check lives in
    [test/test_serve.ml]. *)

type policy =
  | Exact  (** one bucket per distinct shape *)
  | Pad of {
      multiple : int;  (** round every dimension up to this multiple *)
      max_over : float;
          (** cap: if padding would grow the element count by more than
              this factor, fall back to the exact shape so a pathological
              request cannot drag a whole bucket's footprint up *)
    }

let default_multiple = 8

let default = Pad { multiple = default_multiple; max_over = 2.0 }

let round_up ~multiple d =
  if d <= 0 then d else (d + multiple - 1) / multiple * multiple

let numel dims = Array.fold_left ( * ) 1 dims

(** The bucket shape for [dims] under [policy]. [Exact] is the identity;
    [Pad] rounds each dimension up to the multiple unless the cap trips,
    in which case the exact dims are the bucket (still deterministic —
    the same shape always lands in the same bucket). *)
let key policy (dims : int array) : int array =
  match policy with
  | Exact -> Array.copy dims
  | Pad { multiple; max_over } ->
      let multiple = Stdlib.max 1 multiple in
      let padded = Array.map (round_up ~multiple) dims in
      let exact_n = Stdlib.max 1 (numel dims) in
      if float_of_int (numel padded) > max_over *. float_of_int exact_n then
        Array.copy dims
      else padded

(** {!key} rendered as a stable string ("8x64"), the hashtable key used
    by the batch former and the label shown in stats and trace spans. *)
let key_string policy dims =
  String.concat "x" (Array.to_list (Array.map string_of_int (key policy dims)))

let pp_policy ppf = function
  | Exact -> Fmt.string ppf "exact"
  | Pad { multiple; max_over } ->
      Fmt.pf ppf "pad(multiple=%d, max_over=%.2f)" multiple max_over
