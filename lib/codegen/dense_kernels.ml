(** Tiled dense kernels for symbolic codegen (paper §4.5, Figure 3).

    The symbolic dimension is [m] (e.g. BERT's sequence length); the tiling
    factor is 8. Three codegen strategies are modelled, and their cost
    differences are *real* — these closures run on the host CPU:

    - {b static}: [m] known at compile time, so the loop splits into
      [m / 8] full tiles handled by an unrolled 8-row microkernel plus a
      residue tail of known length, with no checks anywhere.
    - {b residue dispatch}: [m = 8q + r]; one kernel is generated per covered
      residue [r]. Each runs the unrolled microkernel for [q] tiles and a
      check-free tail for its fixed [r]. At runtime a dispatcher picks the
      kernel from [m mod 8] (see {!Dispatch}).
    - {b guarded} (no dispatch): one kernel for all [m]. The compiler cannot
      prove tile fullness, so the row-validity guard stays in the innermost
      loop — exactly the boundary-check cost the paper measures. *)


open Nimble_tensor
module Parallel = Nimble_parallel.Parallel

let tile = 8

(* Row-tiles write disjoint output rows, so the tile loop partitions
   over the domain pool bitwise-identically to the sequential sweep.
   Grain keeps at least [default_min_work] flops per chunk. *)
let tile_grain ~rows_per_tile ~n ~k =
  Parallel.grain_for
    ~work_per_item:(rows_per_tile * n * k)
    ~min_work:Parallel.default_min_work

(* Unrolled microkernel: rows [i0, i0+8) of out += a * w^T, full tile.
   Eight unrolled accumulators and, crucially, each weight element is loaded
   once and reused across all eight rows — the data reuse register tiling
   buys when the tile is provably full. *)
let micro8 (a : Tensor.f32_buf) (w : Tensor.f32_buf) (c : Tensor.f32_buf) ~i0 ~n ~k =
  let a0 = i0 * k in
  let a1 = a0 + k and a2 = a0 + (2 * k) and a3 = a0 + (3 * k) in
  let a4 = a0 + (4 * k) and a5 = a0 + (5 * k) and a6 = a0 + (6 * k) and a7 = a0 + (7 * k) in
  for j = 0 to n - 1 do
    let wrow = j * k in
    let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
    let s4 = ref 0.0 and s5 = ref 0.0 and s6 = ref 0.0 and s7 = ref 0.0 in
    for p = 0 to k - 1 do
      let wv = Array.unsafe_get w (wrow + p) in
      s0 := !s0 +. (Array.unsafe_get a (a0 + p) *. wv);
      s1 := !s1 +. (Array.unsafe_get a (a1 + p) *. wv);
      s2 := !s2 +. (Array.unsafe_get a (a2 + p) *. wv);
      s3 := !s3 +. (Array.unsafe_get a (a3 + p) *. wv);
      s4 := !s4 +. (Array.unsafe_get a (a4 + p) *. wv);
      s5 := !s5 +. (Array.unsafe_get a (a5 + p) *. wv);
      s6 := !s6 +. (Array.unsafe_get a (a6 + p) *. wv);
      s7 := !s7 +. (Array.unsafe_get a (a7 + p) *. wv)
    done;
    Array.unsafe_set c ((i0 * n) + j) !s0;
    Array.unsafe_set c (((i0 + 1) * n) + j) !s1;
    Array.unsafe_set c (((i0 + 2) * n) + j) !s2;
    Array.unsafe_set c (((i0 + 3) * n) + j) !s3;
    Array.unsafe_set c (((i0 + 4) * n) + j) !s4;
    Array.unsafe_set c (((i0 + 5) * n) + j) !s5;
    Array.unsafe_set c (((i0 + 6) * n) + j) !s6;
    Array.unsafe_set c (((i0 + 7) * n) + j) !s7
  done

(* Check-free tail: [rows] < 8 trailing rows, extent known to the caller. *)
let tail_rows (a : Tensor.f32_buf) (w : Tensor.f32_buf) (c : Tensor.f32_buf) ~i0 ~rows ~n ~k =
  for i = i0 to i0 + rows - 1 do
    let arow = i * k and crow = i * n in
    for j = 0 to n - 1 do
      let wrow = j * k in
      let s = ref 0.0 in
      for p = 0 to k - 1 do
        s := !s +. (Array.unsafe_get a (arow + p) *. Array.unsafe_get w (wrow + p))
      done;
      Array.unsafe_set c (crow + j) !s
    done
  done

let bufs_exn a w out =
  match (a.Tensor.buf, w.Tensor.buf, out.Tensor.buf) with
  | Tensor.Floats ba, Tensor.Floats bw, Tensor.Floats bc -> (ba, bw, bc)
  | _ -> Tensor.type_err "dense kernels require floating-point operands"

let check_dims a w =
  let ds = Tensor.shape a and ws = Tensor.shape w in
  if Shape.rank ds <> 2 || Shape.rank ws <> 2 || ds.(1) <> ws.(1) then
    Tensor.type_err "dense: bad operand shapes %a %a" Shape.pp ds Shape.pp ws;
  (ds.(0), ws.(0), ds.(1))

(** Residue-specialized kernel: correct for any [m] with [m mod 8 = residue]. *)
let residue_kernel ~residue a w =
  let m, n, k = check_dims a w in
  if m mod tile <> residue then
    Tensor.type_err "dense dispatch: kernel for residue %d called with m=%d" residue m;
  let out = Tensor.empty ~dtype:Dtype.F32 [| m; n |] in
  let ba, bw, bc = bufs_exn a w out in
  let q = m / tile in
  Parallel.parallel_for ~grain:(tile_grain ~rows_per_tile:tile ~n ~k) q
    (fun lo hi ->
      for blk = lo to hi - 1 do
        micro8 ba bw bc ~i0:(blk * tile) ~n ~k
      done);
  if residue > 0 then tail_rows ba bw bc ~i0:(q * tile) ~rows:residue ~n ~k;
  out

(** Fully static kernel: specializes to a compile-time [m]. *)
let static_kernel ~m_static a w =
  let m, _, _ = check_dims a w in
  if m <> m_static then
    Tensor.type_err "dense static kernel compiled for m=%d called with m=%d" m_static m;
  residue_kernel ~residue:(m_static mod tile) a w

(** Guarded symbolic kernel (no dispatch): tile fullness cannot be proven
    for a symbolic [m], so the row-validity guard stays in the tile body.
    The guard defeats the 8-row unrolling — the loop nest the compiler can
    still emit clamps each tile (`min`) and processes its rows one at a
    time, re-streaming every weight element once *per row* instead of once
    per tile. The lost register-tile reuse plus the per-tile clamping is
    exactly the boundary-handling cost Figure 3 measures. *)
let guarded_kernel a w =
  let m, n, k = check_dims a w in
  let out = Tensor.empty ~dtype:Dtype.F32 [| m; n |] in
  let ba, bw, bc = bufs_exn a w out in
  let nblocks = (m + tile - 1) / tile in
  Parallel.parallel_for ~grain:(tile_grain ~rows_per_tile:tile ~n ~k) nblocks
    (fun lo hi ->
      for blk = lo to hi - 1 do
        let i0 = blk * tile in
        let rows = Stdlib.min tile (m - i0) in
        (* un-tiled fallback body: one row at a time, no cross-row reuse *)
        tail_rows ba bw bc ~i0 ~rows ~n ~k
      done);
  out

(** Microkernels with other row-tile widths, for the tuner's search space. *)
let tiled_kernel ~tile_m a w =
  let m, n, k = check_dims a w in
  let out = Tensor.empty ~dtype:Dtype.F32 [| m; n |] in
  let ba, bw, bc = bufs_exn a w out in
  if tile_m = tile then begin
    let q = m / tile in
    Parallel.parallel_for ~grain:(tile_grain ~rows_per_tile:tile ~n ~k) q
      (fun lo hi ->
        for blk = lo to hi - 1 do
          micro8 ba bw bc ~i0:(blk * tile) ~n ~k
        done);
    tail_rows ba bw bc ~i0:(q * tile) ~rows:(m mod tile) ~n ~k
  end
  else begin
    let q = m / tile_m in
    Parallel.parallel_for ~grain:(tile_grain ~rows_per_tile:tile_m ~n ~k) q
      (fun lo hi ->
        for blk = lo to hi - 1 do
          let i0 = blk * tile_m in
          for j = 0 to n - 1 do
            let wrow = j * k in
            let acc = Array.make tile_m 0.0 in
            for p = 0 to k - 1 do
              let wv = Array.unsafe_get bw (wrow + p) in
              for r = 0 to tile_m - 1 do
                acc.(r) <- acc.(r) +. (Array.unsafe_get ba (((i0 + r) * k) + p) *. wv)
              done
            done;
            for r = 0 to tile_m - 1 do
              Array.unsafe_set bc (((i0 + r) * n) + j) acc.(r)
            done
          done
        done);
    tail_rows ba bw bc ~i0:(q * tile_m) ~rows:(m mod tile_m) ~n ~k
  end;
  out

(** A deliberately different schedule standing in for a vendor library
    (cuDNN/MKL in the paper): the dispatch function may route to it when
    profiling says it is faster. *)
let extern_library_kernel a w = Ops_matmul.dense a w
