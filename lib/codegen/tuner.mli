(** Template-based kernel tuning extended to symbolic shapes (paper §4.5):
    search the tile-width space on a static stand-in extent, cross-evaluate
    the top-k on other extents, pick the best (optionally workload-weighted)
    average. Timings use the monotonic clock with an explicit warmup/repeat
    protocol; see [docs/TUNING.md]. *)

(** A point in the dense template's configuration space: the row-tile
    width. *)
type config = { tile_m : int }

(** One timed evaluation of [config] at extent [shape_m]. *)
type measurement = { config : config; shape_m : int; seconds : float }

(** The tuning outcome, including the measurement protocol that produced
    it. *)
type result = {
  best : config;
  tuned_on : int;  (** the static stand-in extent *)
  top_k : config list;
  cross_eval : measurement list;
  repeats : int;  (** timed runs per (config, extent) point *)
  warmup : int;  (** untimed priming runs before the timed ones *)
}

(** The tile widths searched by default: 1, 2, 4, 8, 16. *)
val default_space : config list

(** Median of [repeats] (default 3) monotonic-clock timings of running
    [config] at extent [m] with weight dims [n]×[k], after [warmup]
    (default 1) untimed priming runs. *)
val measure : ?repeats:int -> ?warmup:int -> n:int -> k:int -> config -> int -> float

(** Tune the dense template for a symbolic [m] with fixed weight dims
    [n]/[k] via the paper's three-step protocol.
    @param static_stand_in extent substituted for the symbolic dim in step 1
    (default 64)
    @param shape_weights per-extent weights biasing the step-3 average when
    the workload distribution is known (the §4.5 extension); extents absent
    from the list get weight 0
    @param repeats,warmup the {!measure} protocol, surfaced in the result. *)
val tune :
  ?space:config list ->
  ?static_stand_in:int ->
  ?top_k:int ->
  ?eval_extents:int list ->
  ?shape_weights:(int * float) list ->
  ?repeats:int ->
  ?warmup:int ->
  n:int ->
  k:int ->
  unit ->
  result

(** Decide between the generated kernel and the extern library kernel by
    profiling both at extent [m] (default 64), as the paper's dispatch
    function does. *)
val profile_extern : ?m:int -> n:int -> k:int -> unit -> [ `Extern | `Generated ]
