(** Shape-based kernel dispatch (paper §4.5).

    For a kernel with one symbolic dimension tiled by factor [tile], codegen
    emits up to [tile] residue-specialized kernels; the dispatch function
    selects one from the runtime value [m mod tile], falling back to the
    guarded (boundary-checked) kernel for uncovered residues. The dispatcher
    can also route to an extern library kernel when profiling marked it
    faster, and — closing the profile-guided loop — to exact-extent tuned
    kernels installed at serve time by {!Autotune} via an atomic table swap.

    Every dispatcher keeps hit/miss counters (total and per residue), an
    exact-extent histogram feeding the hotness tracker, and registers itself
    in a process-wide table so the observability layer can report
    dispatch-table statistics ({!snapshots}); {!last_selection} lets the VM
    trace attribute each kernel invocation to the specialization that
    actually fired. All shared state is domain-safe: counters are atomic,
    the mutable routing table is swapped with CAS (readers never block, and
    in-flight calls keep the table they loaded), and the last-selection slot
    is domain-local. *)

open Nimble_tensor

type dense_fn = Tensor.t -> Tensor.t -> Tensor.t

type selection = Hit of int | Miss of int | Extern | Tuned of int

(* One exact-extent specialization installed by the online tuner. *)
type tuned_entry = { te_extent : int; te_tile_m : int; te_fn : dense_fn }

(* The swappable part of the routing state. Residue kernels and the guarded
   fallback are fixed at creation; tuned entries and the extern route change
   at serve time, so they live behind one atomic so an install publishes a
   consistent table in a single CAS. Entries are newest-first. *)
type table = { tuned : tuned_entry list; extern : dense_fn option }

type t = {
  name : string;
  tile : int;
  covered : (int * dense_fn) list;  (** residue -> specialized kernel *)
  fallback : dense_fn;
  table : table Atomic.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  extern_calls : int Atomic.t;
  tuned_calls : int Atomic.t;
  installs : int Atomic.t;
  evictions : int Atomic.t;
  residue_hits : int Atomic.t array;  (** hit count per residue class *)
  hist_mux : Mutex.t;
  hist : (int, int ref) Hashtbl.t;  (** exact extent -> dispatch count *)
  observed_nk : (int * int) option Atomic.t;  (** last (n, k) seen by {!run} *)
}

(* Process-wide observability state: the dispatchers created so far (for
   report aggregation and the autotune scan) and the most recent selection
   (for trace attribution). Compilation creates a handful of dispatchers per
   executable, so the registry stays small; it is CAS-prepended so relinks
   racing with a background tuner never lose a registration. *)
let registry : t list Atomic.t = Atomic.make []

(* Trace attribution is per-domain: each serve worker tags its own kernel
   spans without seeing selections made concurrently on other domains. *)
let last_key : (string * selection) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let last_selection () = !(Domain.DLS.get last_key)
let clear_last_selection () = Domain.DLS.get last_key := None
let set_last v = Domain.DLS.get last_key := Some v

let rec register t =
  let old = Atomic.get registry in
  if not (Atomic.compare_and_set registry old (t :: old)) then register t

(** [create ~num_kernels] builds a dispatcher generating [num_kernels]
    residue-specialized kernels out of the [tile] possible ones; residues
    are chosen evenly spaced, matching the paper's "dispatch/k" settings.
    [name] labels the dispatcher in reports (default ["dense"]). *)
let create ?(name = "dense") ?(tile = Dense_kernels.tile) ~num_kernels () =
  if num_kernels < 0 || num_kernels > tile then
    Fmt.invalid_arg "Dispatch.create: num_kernels %d out of [0, %d]" num_kernels tile;
  let covered =
    if num_kernels = 0 then []
    else
      let step = tile / num_kernels in
      List.init num_kernels (fun i ->
          let r = i * step in
          (r, Dense_kernels.residue_kernel ~residue:r))
  in
  let t =
    {
      name;
      tile;
      covered;
      fallback = Dense_kernels.guarded_kernel;
      table = Atomic.make { tuned = []; extern = None };
      hits = Atomic.make 0;
      misses = Atomic.make 0;
      extern_calls = Atomic.make 0;
      tuned_calls = Atomic.make 0;
      installs = Atomic.make 0;
      evictions = Atomic.make 0;
      residue_hits = Array.init tile (fun _ -> Atomic.make 0);
      hist_mux = Mutex.create ();
      hist = Hashtbl.create 16;
      observed_nk = Atomic.make None;
    }
  in
  register t;
  t

let name t = t.name

let rec swap_table t f =
  let old = Atomic.get t.table in
  if not (Atomic.compare_and_set t.table old (f old)) then swap_table t f

let set_extern t fn = swap_table t (fun tbl -> { tbl with extern = Some fn })

(** Install an exact-extent tuned kernel ([tile_m]-tiled) into the live
    table. One CAS publishes the new table; readers mid-[select] keep the
    table they already loaded, so no call observes a half-installed state.
    Re-installing an extent replaces its entry in place; past [max_exact]
    entries (default 16) the oldest is evicted. *)
let install_tuned ?(max_exact = 16) t ~extent ~tile_m =
  if extent <= 0 then Fmt.invalid_arg "Dispatch.install_tuned: extent %d" extent;
  if tile_m <= 0 then Fmt.invalid_arg "Dispatch.install_tuned: tile_m %d" tile_m;
  let entry = { te_extent = extent; te_tile_m = tile_m;
                te_fn = Dense_kernels.tiled_kernel ~tile_m } in
  let evicted = ref 0 in
  swap_table t (fun tbl ->
      let kept = List.filter (fun e -> e.te_extent <> extent) tbl.tuned in
      let tuned = entry :: kept in
      let n = List.length tuned in
      evicted := max 0 (n - max_exact);
      let tuned = List.filteri (fun i _ -> i < max_exact) tuned in
      { tbl with tuned });
  Atomic.incr t.installs;
  for _ = 1 to !evicted do Atomic.incr t.evictions done

(** [tile_m] of the tuned kernel installed for [extent], if any. *)
let pretuned t ~extent =
  List.find_opt (fun e -> e.te_extent = extent) (Atomic.get t.table).tuned
  |> Option.map (fun e -> e.te_tile_m)

(** Installed (extent, tile_m) decisions, sorted by extent — what
    [Serve.Cache.persist_tunes] writes into the NMBLEXE4 tune table. *)
let tuned_decisions t =
  (Atomic.get t.table).tuned
  |> List.map (fun e -> (e.te_extent, e.te_tile_m))
  |> List.sort compare

let observe_extent t m =
  Mutex.lock t.hist_mux;
  (match Hashtbl.find_opt t.hist m with
  | Some r -> incr r
  | None -> Hashtbl.add t.hist m (ref 1));
  Mutex.unlock t.hist_mux

(** Exact-extent dispatch counts since the last reset, sorted by extent —
    the hotness signal {!Autotune} scans. *)
let extent_histogram t =
  Mutex.lock t.hist_mux;
  let rows = Hashtbl.fold (fun m r acc -> (m, !r) :: acc) t.hist [] in
  Mutex.unlock t.hist_mux;
  List.sort compare rows

(** The [(n, k)] weight dimensions of the most recent {!run} call — tells
    the background tuner what problem size to tune for. *)
let observed_dims t = Atomic.get t.observed_nk

(** Pick the kernel for runtime extent [m], recording the selection. *)
let select t ~m : dense_fn =
  observe_extent t m;
  let tbl = Atomic.get t.table in
  match List.find_opt (fun e -> e.te_extent = m) tbl.tuned with
  | Some e ->
      Atomic.incr t.tuned_calls;
      set_last (t.name, Tuned m);
      e.te_fn
  | None -> (
      match tbl.extern with
      | Some fn ->
          Atomic.incr t.extern_calls;
          set_last (t.name, Extern);
          fn
      | None -> (
          let r = m mod t.tile in
          match List.assoc_opt r t.covered with
          | Some fn ->
              Atomic.incr t.hits;
              Atomic.incr t.residue_hits.(r);
              set_last (t.name, Hit r);
              fn
          | None ->
              Atomic.incr t.misses;
              set_last (t.name, Miss r);
              t.fallback))

(** Run a dense call through the dispatcher. *)
let run t a w =
  let m = (Tensor.shape a).(0) in
  (match Tensor.shape w with
  | [| n; k |] -> Atomic.set t.observed_nk (Some (n, k))
  | _ -> ());
  (select t ~m) a w

let stats t = (Atomic.get t.hits, Atomic.get t.misses)

(** Calls served by an exact-extent tuned kernel. *)
let tuned_calls t = Atomic.get t.tuned_calls

(** Number of generated kernel bodies (code-size cost of dispatch, which the
    paper discusses as the trade-off knob); live tuned entries count. *)
let code_size t =
  List.length t.covered + List.length (Atomic.get t.table).tuned + 1

(* ----------------------- report aggregation ----------------------- *)

type snapshot = {
  snap_name : string;
  snap_tile : int;
  snap_kernels : int;  (** residue-specialized bodies generated *)
  snap_hits : int;
  snap_misses : int;
  snap_extern_calls : int;
  snap_tuned_calls : int;
  snap_installs : int;
  snap_evictions : int;
  snap_residue_hits : (int * int) list;  (** residue -> hits, nonzero only *)
  snap_tuned : (int * int) list;  (** extent -> tile_m installed *)
}

let snapshot_of t =
  {
    snap_name = t.name;
    snap_tile = t.tile;
    snap_kernels = List.length t.covered;
    snap_hits = Atomic.get t.hits;
    snap_misses = Atomic.get t.misses;
    snap_extern_calls = Atomic.get t.extern_calls;
    snap_tuned_calls = Atomic.get t.tuned_calls;
    snap_installs = Atomic.get t.installs;
    snap_evictions = Atomic.get t.evictions;
    snap_residue_hits =
      Array.to_list t.residue_hits
      |> List.mapi (fun r n -> (r, Atomic.get n))
      |> List.filter (fun (_, n) -> n > 0);
    snap_tuned = tuned_decisions t;
  }

(** Every dispatcher created in this process, oldest first — the autotune
    scan walks this. *)
let registered () = List.rev (Atomic.get registry)

(** The most recently created dispatcher named [name]. Relinking an
    executable re-emits its dispatchers, so newest-first lookup resolves a
    kernel name to the table actually wired into the live executable. *)
let find ~name =
  List.find_opt (fun t -> t.name = name) (Atomic.get registry)

let fired t =
  Atomic.get t.hits + Atomic.get t.misses + Atomic.get t.extern_calls
  + Atomic.get t.tuned_calls
  > 0

(** Per-dispatcher counters for every dispatcher created in this process,
    oldest first, dispatchers that never fired excluded. *)
let snapshots () = registered () |> List.filter fired |> List.map snapshot_of

(** Zero every registered dispatcher's counters and extent histograms,
    scoping the next {!snapshots} to one measurement window. Installed tuned
    entries survive (they are routing state, not counters); the calling
    domain's {!last_selection} is cleared. *)
let reset_counters () =
  List.iter
    (fun t ->
      Atomic.set t.hits 0;
      Atomic.set t.misses 0;
      Atomic.set t.extern_calls 0;
      Atomic.set t.tuned_calls 0;
      Atomic.set t.installs 0;
      Atomic.set t.evictions 0;
      Array.iter (fun a -> Atomic.set a 0) t.residue_hits;
      Mutex.lock t.hist_mux;
      Hashtbl.reset t.hist;
      Mutex.unlock t.hist_mux)
    (Atomic.get registry);
  clear_last_selection ()
