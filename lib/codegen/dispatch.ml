(** Shape-based kernel dispatch (paper §4.5).

    For a kernel with one symbolic dimension tiled by factor [tile], codegen
    emits up to [tile] residue-specialized kernels; the dispatch function
    selects one from the runtime value [m mod tile], falling back to the
    guarded (boundary-checked) kernel for uncovered residues. The dispatcher
    can also route to an extern library kernel when profiling marked it
    faster.

    Every dispatcher keeps hit/miss counters (total and per residue) and
    registers itself in a process-wide table so the observability layer can
    report dispatch-table statistics ({!snapshots}); {!last_selection} lets
    the VM trace attribute each kernel invocation to the specialization
    that actually fired. *)

open Nimble_tensor

type dense_fn = Tensor.t -> Tensor.t -> Tensor.t

type selection = Hit of int | Miss of int | Extern

type t = {
  name : string;
  tile : int;
  covered : (int * dense_fn) list;  (** residue -> specialized kernel *)
  fallback : dense_fn;
  mutable extern : dense_fn option;  (** profiling-selected library kernel *)
  mutable hits : int;
  mutable misses : int;
  mutable extern_calls : int;
  residue_hits : int array;  (** hit count per residue class, length [tile] *)
}

(* Process-wide observability state: the dispatchers created so far (for
   report aggregation) and the most recent selection (for trace
   attribution). Compilation creates a handful of dispatchers per
   executable, so the registry stays small. *)
let registry : t list ref = ref []
let last : (string * selection) option ref = ref None

let last_selection () = !last
let clear_last_selection () = last := None

(** [create ~num_kernels] builds a dispatcher generating [num_kernels]
    residue-specialized kernels out of the [tile] possible ones; residues
    are chosen evenly spaced, matching the paper's "dispatch/k" settings.
    [name] labels the dispatcher in reports (default ["dense"]). *)
let create ?(name = "dense") ?(tile = Dense_kernels.tile) ~num_kernels () =
  if num_kernels < 0 || num_kernels > tile then
    Fmt.invalid_arg "Dispatch.create: num_kernels %d out of [0, %d]" num_kernels tile;
  let covered =
    if num_kernels = 0 then []
    else
      let step = tile / num_kernels in
      List.init num_kernels (fun i ->
          let r = i * step in
          (r, Dense_kernels.residue_kernel ~residue:r))
  in
  let t =
    {
      name;
      tile;
      covered;
      fallback = Dense_kernels.guarded_kernel;
      extern = None;
      hits = 0;
      misses = 0;
      extern_calls = 0;
      residue_hits = Array.make tile 0;
    }
  in
  registry := t :: !registry;
  t

let set_extern t fn = t.extern <- Some fn

(** Pick the kernel for runtime extent [m], recording the selection. *)
let select t ~m : dense_fn =
  match t.extern with
  | Some fn ->
      t.extern_calls <- t.extern_calls + 1;
      last := Some (t.name, Extern);
      fn
  | None -> (
      let r = m mod t.tile in
      match List.assoc_opt r t.covered with
      | Some fn ->
          t.hits <- t.hits + 1;
          t.residue_hits.(r) <- t.residue_hits.(r) + 1;
          last := Some (t.name, Hit r);
          fn
      | None ->
          t.misses <- t.misses + 1;
          last := Some (t.name, Miss r);
          t.fallback)

(** Run a dense call through the dispatcher. *)
let run t a w =
  let m = (Tensor.shape a).(0) in
  (select t ~m) a w

let stats t = (t.hits, t.misses)

(** Number of generated kernel bodies (code-size cost of dispatch, which the
    paper discusses as the trade-off knob). *)
let code_size t = List.length t.covered + 1

(* ----------------------- report aggregation ----------------------- *)

type snapshot = {
  snap_name : string;
  snap_tile : int;
  snap_kernels : int;  (** residue-specialized bodies generated *)
  snap_hits : int;
  snap_misses : int;
  snap_extern_calls : int;
  snap_residue_hits : (int * int) list;  (** residue -> hits, nonzero only *)
}

let snapshot_of t =
  {
    snap_name = t.name;
    snap_tile = t.tile;
    snap_kernels = List.length t.covered;
    snap_hits = t.hits;
    snap_misses = t.misses;
    snap_extern_calls = t.extern_calls;
    snap_residue_hits =
      Array.to_list t.residue_hits
      |> List.mapi (fun r n -> (r, n))
      |> List.filter (fun (_, n) -> n > 0);
  }

(** Per-dispatcher counters for every dispatcher created in this process,
    oldest first, dispatchers that never fired excluded. *)
let snapshots () =
  List.rev !registry
  |> List.filter (fun t -> t.hits + t.misses + t.extern_calls > 0)
  |> List.map snapshot_of

(** Zero every registered dispatcher's counters, scoping the next
    {!snapshots} to one measurement window. *)
let reset_counters () =
  List.iter
    (fun t ->
      t.hits <- 0;
      t.misses <- 0;
      t.extern_calls <- 0;
      Array.fill t.residue_hits 0 t.tile 0)
    !registry;
  last := None
