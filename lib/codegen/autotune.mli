(** Online profile-guided shape specialization: a hotness tracker over the
    {!Dispatch} registry's exact-extent histograms queues background
    {!Tuner.tune} runs for hot extents and installs the winners into live
    dispatch tables by atomic swap — serving never pauses and outputs stay
    bitwise-equal. Tune decisions persist via the NMBLEXE4 tune table
    ([Serve.Cache.persist_tunes]) so warm restarts relink pre-specialized.
    Protocol and policy are documented in [docs/TUNING.md]. *)

(** Hotness/tuning policy knobs. *)
type config = {
  hot_threshold : int;  (** dispatch count at which an extent is hot *)
  scan_interval : int;  (** {!observe} calls between registry scans *)
  max_exact : int;  (** live tuned-entry cap per dispatcher *)
  synchronous : bool;  (** run tuning inline on the calling domain (tests) *)
  repeats : int;  (** {!Tuner.measure} timed runs per point *)
  warmup : int;  (** {!Tuner.measure} priming runs per point *)
}

(** threshold 32, interval 64, cap 16, background, 3 repeats / 1 warmup. *)
val default_config : config

(** One completed specialization: which kernel/extent was tuned, the chosen
    tile width, the specialized-call fraction when the task was queued, and
    how long tuning took. *)
type install = {
  in_kernel : string;
  in_extent : int;
  in_tile_m : int;
  in_hit_rate_before : float;  (** specialized-call fraction at queue time *)
  in_seconds : float;  (** tuning wall time (monotonic) *)
}

(** Lifetime counters for the profiler's [autotune] report section. *)
type summary = {
  au_observations : int;
  au_scans : int;
  au_queued : int;
  au_installs : install list;  (** oldest first *)
  au_evictions : int;
  au_pending : int;  (** queued or running tasks not yet installed *)
}

type t

(** A tracker with no background domain yet — the tuning domain is spawned
    lazily on the first queued task and joined by {!shutdown}. *)
val create : ?config:config -> unit -> t

(** The policy the tracker was created with. *)
val config : t -> config

(** Count one serving step (the engine calls this per executed batch);
    every [scan_interval] observations triggers {!scan}. *)
val observe : t -> unit

(** Scan every registered dispatcher's extent histogram now and queue a
    tuning task for each hot extent that is not already tuned or pending.
    Dispatchers that have never run are skipped (their weight dims are
    unknown). *)
val scan : t -> unit

(** Fraction of [d]'s dispatch calls served by a specialized body (residue
    or tuned) rather than the guarded fallback, this measurement window. *)
val hit_rate : Dispatch.t -> float

(** Block until the queue is empty and no task is in flight. *)
val drain : t -> unit

(** Stop accepting tasks, finish the queue, and join the tuning domain.
    Idempotent. *)
val shutdown : t -> unit

(** Completed installs, oldest first. *)
val installs : t -> install list

(** Register a callback invoked (on the tuning domain) after each install —
    the serve engine uses this to record [vm.retune] trace spans. *)
val set_notify : t -> (install -> unit) -> unit

(** Lifetime counters and installs at this instant (callable any time). *)
val summary : t -> summary
