(** Template-based kernel tuning extended to symbolic shapes (paper §4.5).

    The search template for dense is the row-tile width. Following the
    paper's mechanism:

    1. replace the symbolic dimension with a large static value and search
       the template's configuration space on that shape;
    2. take the top-k configurations and evaluate them on a selection of
       other extents (powers of two up to 256);
    3. pick the configuration with the best average performance.

    Measurements are real runs of the candidate kernels, timed on the
    monotonic clock (wall clock skews mid-measurement under NTP) with an
    explicit warmup/repeat protocol surfaced in the result record. *)

open Nimble_tensor

type config = { tile_m : int }

type measurement = { config : config; shape_m : int; seconds : float }

type result = {
  best : config;
  tuned_on : int;  (** the static stand-in extent *)
  top_k : config list;
  cross_eval : measurement list;
  repeats : int;  (** timed runs per (config, extent) point *)
  warmup : int;  (** untimed priming runs before the timed ones *)
}

let default_space = [ { tile_m = 1 }; { tile_m = 2 }; { tile_m = 4 }; { tile_m = 8 }; { tile_m = 16 } ]

(* Monotonic nanoseconds (bechamel's clock_gettime(CLOCK_MONOTONIC) stub). *)
let now_ns () = Monotonic_clock.now ()

let seconds_since t0 = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9

(** Median of [repeats] monotonic-clock timings of one (config, m) point,
    after [warmup] untimed priming runs. *)
let measure ?(repeats = 3) ?(warmup = 1) ~n ~k config m =
  let rng = Rng.create ~seed:(m + (config.tile_m * 7919)) in
  let a = Tensor.randn rng [| m; k |] in
  let w = Tensor.randn rng [| n; k |] in
  for _ = 1 to warmup do
    ignore (Dense_kernels.tiled_kernel ~tile_m:config.tile_m a w)
  done;
  let times =
    List.init repeats (fun _ ->
        let t0 = now_ns () in
        ignore (Dense_kernels.tiled_kernel ~tile_m:config.tile_m a w);
        seconds_since t0)
  in
  let sorted = List.sort Float.compare times in
  List.nth sorted (repeats / 2)

(** Tune the dense template for a symbolic [m], fixed [n]/[k].

    [shape_weights] implements the paper's extension for known workload
    distributions: "if the workload distribution is known, we could adjust
    the weighting of known shapes when picking the best configuration" — a
    weight per evaluated extent biases the step-3 average. The online tuner
    ({!Autotune}) derives these weights from the live extent histogram. *)
let tune ?(space = default_space) ?(static_stand_in = 64) ?(top_k = 2)
    ?(eval_extents = [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]) ?shape_weights
    ?(repeats = 3) ?(warmup = 1) ~n ~k () =
  (* Step 1: search on the static stand-in shape. *)
  let scored =
    List.map (fun c -> (c, measure ~repeats ~warmup ~n ~k c static_stand_in)) space
    |> List.sort (fun (_, a) (_, b) -> Float.compare a b)
  in
  let top = List.filteri (fun i _ -> i < top_k) scored |> List.map fst in
  (* Step 2: cross-evaluate the top configurations on other extents. *)
  let cross_eval =
    List.concat_map
      (fun config ->
        List.map
          (fun m ->
            { config; shape_m = m; seconds = measure ~repeats ~warmup ~n ~k config m })
          eval_extents)
      top
  in
  (* Step 3: best (optionally workload-weighted) average across extents. *)
  let weight_of m =
    match shape_weights with
    | None -> 1.0
    | Some ws -> ( match List.assoc_opt m ws with Some w -> w | None -> 0.0)
  in
  let avg config =
    let rs = List.filter (fun r -> r.config = config) cross_eval in
    let wsum = List.fold_left (fun acc r -> acc +. weight_of r.shape_m) 0.0 rs in
    if wsum <= 0.0 then Float.infinity
    else
      List.fold_left (fun acc r -> acc +. (weight_of r.shape_m *. r.seconds)) 0.0 rs
      /. wsum
  in
  let best =
    match List.sort (fun a b -> Float.compare (avg a) (avg b)) top with
    | best :: _ -> best
    | [] -> { tile_m = Dense_kernels.tile }
  in
  { best; tuned_on = static_stand_in; top_k = top; cross_eval; repeats; warmup }

(** Decide between the generated kernel and the extern library kernel from
    profiling, as the dispatch function does in the paper. *)
let profile_extern ?(m = 64) ~n ~k () =
  let rng = Rng.create ~seed:42 in
  let a = Tensor.randn rng [| m; k |] in
  let w = Tensor.randn rng [| n; k |] in
  let time f =
    ignore (f a w);
    let t0 = now_ns () in
    ignore (f a w);
    seconds_since t0
  in
  let generated = time (fun a w -> Dense_kernels.residue_kernel ~residue:(m mod 8) a w) in
  let extern = time Dense_kernels.extern_library_kernel in
  if extern < generated then `Extern else `Generated
