(** Online profile-guided shape specialization — closes the loop from
    hot-shape profiling to live dispatch-table re-tuning (paper §4.5's
    workload-distribution extension; DyCL-style serve-time recompilation).

    A hotness tracker scans the {!Dispatch} registry's exact-extent
    histograms; when an extent's dispatch count crosses [hot_threshold], a
    tuning task is queued to a single background domain (off the serve hot
    path — at pool width 1 the shared pool has no worker domains, so the
    tuner owns its own; its kernel measurements run under
    [Parallel.pinned_sequential] so they never contend for pool workers).
    The task runs {!Tuner.tune} with [shape_weights] from the observed
    distribution and the hot extent as stand-in, then installs the winner
    into the live table via {!Dispatch.install_tuned} — one CAS, no pause;
    in-flight requests keep the old kernel and outputs stay bitwise-equal
    because every dense kernel computes identical results. *)

type config = {
  hot_threshold : int;  (** dispatch count at which an extent is hot *)
  scan_interval : int;  (** {!observe} calls between registry scans *)
  max_exact : int;  (** live tuned-entry cap per dispatcher *)
  synchronous : bool;  (** run tuning inline on the calling domain (tests) *)
  repeats : int;  (** {!Tuner.measure} timed runs per point *)
  warmup : int;  (** {!Tuner.measure} priming runs per point *)
}

let default_config =
  { hot_threshold = 32; scan_interval = 64; max_exact = 16;
    synchronous = false; repeats = 3; warmup = 1 }

type install = {
  in_kernel : string;
  in_extent : int;
  in_tile_m : int;
  in_hit_rate_before : float;  (** specialized-call fraction at queue time *)
  in_seconds : float;  (** tuning wall time (monotonic) *)
}

type summary = {
  au_observations : int;
  au_scans : int;
  au_queued : int;
  au_installs : install list;  (** oldest first *)
  au_evictions : int;
  au_pending : int;  (** queued or running tasks not yet installed *)
}

type task = { tk_dispatch : Dispatch.t; tk_extent : int; tk_hit_rate_before : float }

type t = {
  cfg : config;
  mux : Mutex.t;
  cond : Condition.t;
  queue : task Queue.t;
  pending : (string * int, unit) Hashtbl.t;  (** (kernel, extent) in queue/flight *)
  mutable in_flight : int;
  mutable worker : unit Domain.t option;
  mutable stopped : bool;
  mutable installs : install list;  (** newest first *)
  mutable evictions : int;
  mutable scans : int;
  mutable queued : int;
  mutable notify : install -> unit;
  observations : int Atomic.t;
}

let create ?(config = default_config) () =
  {
    cfg = config;
    mux = Mutex.create ();
    cond = Condition.create ();
    queue = Queue.create ();
    pending = Hashtbl.create 16;
    in_flight = 0;
    worker = None;
    stopped = false;
    installs = [];
    evictions = 0;
    scans = 0;
    queued = 0;
    notify = (fun _ -> ());
    observations = Atomic.make 0;
  }

let config t = t.cfg

let set_notify t f =
  Mutex.lock t.mux;
  t.notify <- f;
  Mutex.unlock t.mux

(* The fraction of dispatch calls served by a specialized body (residue or
   tuned) rather than the guarded fallback — the hit-rate the bench/report
   compares before vs after specialization. *)
let hit_rate d =
  let hits, misses = Dispatch.stats d in
  let tuned = Dispatch.tuned_calls d in
  let total = hits + misses + tuned in
  if total = 0 then 0.0 else float_of_int (hits + tuned) /. float_of_int total

(* Run one tuning task to completion on the calling domain. Measurements
   are pinned sequential so a tuning run never fans out onto pool workers
   that serve traffic. *)
let run_task t task =
  let d = task.tk_dispatch in
  match Dispatch.observed_dims d with
  | None -> None
  | Some (n, k) ->
      let hist = Dispatch.extent_histogram d in
      let total = List.fold_left (fun acc (_, c) -> acc + c) 0 hist in
      let weights =
        if total = 0 then [ (task.tk_extent, 1.0) ]
        else List.map (fun (m, c) -> (m, float_of_int c /. float_of_int total)) hist
      in
      let eval_extents =
        let es = List.map fst hist in
        if List.mem task.tk_extent es then es else task.tk_extent :: es
      in
      let t0 = Monotonic_clock.now () in
      let r =
        Nimble_parallel.Parallel.pinned_sequential (fun () ->
            Tuner.tune ~static_stand_in:task.tk_extent ~eval_extents
              ~shape_weights:weights ~repeats:t.cfg.repeats ~warmup:t.cfg.warmup
              ~n ~k ())
      in
      let seconds =
        Int64.to_float (Int64.sub (Monotonic_clock.now ()) t0) /. 1e9
      in
      let snap = Dispatch.snapshot_of d in
      Dispatch.install_tuned ~max_exact:t.cfg.max_exact d ~extent:task.tk_extent
        ~tile_m:r.Tuner.best.tile_m;
      let evicted = (Dispatch.snapshot_of d).Dispatch.snap_evictions - snap.Dispatch.snap_evictions in
      Some
        ( {
            in_kernel = Dispatch.name d;
            in_extent = task.tk_extent;
            in_tile_m = r.Tuner.best.tile_m;
            in_hit_rate_before = task.tk_hit_rate_before;
            in_seconds = seconds;
          },
          max 0 evicted )

let finish t task outcome =
  Mutex.lock t.mux;
  Hashtbl.remove t.pending (Dispatch.name task.tk_dispatch, task.tk_extent);
  t.in_flight <- t.in_flight - 1;
  let notify = t.notify in
  (match outcome with
  | Some (inst, evicted) ->
      t.installs <- inst :: t.installs;
      t.evictions <- t.evictions + evicted
  | None -> ());
  Condition.broadcast t.cond;
  Mutex.unlock t.mux;
  match outcome with Some (inst, _) -> notify inst | None -> ()

let worker_main t =
  let rec loop () =
    Mutex.lock t.mux;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.cond t.mux
    done;
    if t.stopped && Queue.is_empty t.queue then (
      Mutex.unlock t.mux)
    else begin
      let task = Queue.pop t.queue in
      t.in_flight <- t.in_flight + 1;
      Mutex.unlock t.mux;
      let outcome = try run_task t task with _ -> None in
      finish t task outcome;
      loop ()
    end
  in
  loop ()

(* Queue a task, lazily spawning the background domain; in synchronous mode
   run it inline instead. Caller holds no lock. *)
let enqueue t task =
  if t.cfg.synchronous then begin
    Mutex.lock t.mux;
    let fresh = not (Hashtbl.mem t.pending (Dispatch.name task.tk_dispatch, task.tk_extent)) in
    if fresh then begin
      Hashtbl.replace t.pending (Dispatch.name task.tk_dispatch, task.tk_extent) ();
      t.queued <- t.queued + 1;
      t.in_flight <- t.in_flight + 1
    end;
    Mutex.unlock t.mux;
    if fresh then finish t task (try run_task t task with _ -> None)
  end
  else begin
    Mutex.lock t.mux;
    if (not t.stopped)
       && not (Hashtbl.mem t.pending (Dispatch.name task.tk_dispatch, task.tk_extent))
    then begin
      Hashtbl.replace t.pending (Dispatch.name task.tk_dispatch, task.tk_extent) ();
      t.queued <- t.queued + 1;
      Queue.push task t.queue;
      if t.worker = None then t.worker <- Some (Domain.spawn (fun () -> worker_main t));
      Condition.broadcast t.cond
    end;
    Mutex.unlock t.mux
  end

let scan t =
  Mutex.lock t.mux;
  t.scans <- t.scans + 1;
  Mutex.unlock t.mux;
  List.iter
    (fun d ->
      match Dispatch.observed_dims d with
      | None -> ()
      | Some _ ->
          let rate = hit_rate d in
          Dispatch.extent_histogram d
          |> List.iter (fun (extent, count) ->
                 if count >= t.cfg.hot_threshold
                    && Dispatch.pretuned d ~extent = None
                 then
                   enqueue t
                     { tk_dispatch = d; tk_extent = extent; tk_hit_rate_before = rate }))
    (Dispatch.registered ())

let observe t =
  let n = Atomic.fetch_and_add t.observations 1 + 1 in
  if n mod t.cfg.scan_interval = 0 then scan t

let drain t =
  Mutex.lock t.mux;
  while not (Queue.is_empty t.queue && t.in_flight = 0) do
    Condition.wait t.cond t.mux
  done;
  Mutex.unlock t.mux

let shutdown t =
  Mutex.lock t.mux;
  t.stopped <- true;
  Condition.broadcast t.cond;
  let w = t.worker in
  t.worker <- None;
  Mutex.unlock t.mux;
  Option.iter Domain.join w

let summary t =
  Mutex.lock t.mux;
  let s =
    {
      au_observations = Atomic.get t.observations;
      au_scans = t.scans;
      au_queued = t.queued;
      au_installs = List.rev t.installs;
      au_evictions = t.evictions;
      au_pending = Queue.length t.queue + t.in_flight;
    }
  in
  Mutex.unlock t.mux;
  s

let installs t = (summary t).au_installs
