(** Execution trace hook shared by every executor in the repo.

    The VM's lowered kernels and the baseline frameworks' dispatchers report
    the operators they actually run (plus framework-side actions) through
    this sink; the performance simulator installs a listener and replays the
    trace against per-platform cost models. With no listener installed the
    overhead is one ref read per event site. *)

open Nimble_tensor

type event =
  | Op_exec of {
      op : string;
      in_shapes : Shape.t list;
      out_shapes : Shape.t list;
      flops : int;
      bytes : int;  (** memory traffic estimate: inputs + outputs *)
    }
  | Framework of { kind : string; amount : int }
      (** framework-side action: graph node built, op dispatched,
          recompilation unit, control-flow primitive executed, ... *)

type listener = event -> unit

(** Install [l] as the process-wide trace listener (replacing any). *)
val install : listener -> unit

(** Uninstall the current listener; event sites go back to one ref read. *)
val remove : unit -> unit

(** Run [f] with [l] installed, restoring the previous listener after. *)
val with_listener : listener -> (unit -> 'a) -> 'a

(** Whether a listener is currently installed. *)
val enabled : unit -> bool

(** Send one event to the installed listener, if any. *)
val emit : event -> unit

(** Record execution of operator [op] on concrete tensors (flops and bytes
    are derived from the shapes). *)
val record_op :
  string -> attrs:Nimble_ir.Attrs.t -> Tensor.t list -> Tensor.t list -> unit

(** Record a framework-side action ([kind], default [amount] 1). *)
val record_framework : string -> ?amount:int -> unit -> unit

(** Run an operator through {!Op_eval} and trace it — the standard entry
    point for every interpreter in the repo. *)
val eval_op : string -> attrs:Nimble_ir.Attrs.t -> Tensor.t list -> Tensor.t list
