(** Shape-based kernel dispatch for symbolic codegen (paper §4.5).

    For a dense kernel whose row extent [m] is symbolic, codegen emits up to
    [tile] residue-specialized kernels; at runtime the dispatcher selects
    one from [m mod tile], falling back to the boundary-guarded kernel for
    uncovered residues — trading code size against the boundary-check cost
    Figure 3 measures. It can also route to a profiled third-party library
    kernel, and to exact-extent tuned kernels installed while serving by the
    online tuner ({!Autotune}) — see [docs/TUNING.md].

    Dispatchers also feed the observability layer: each keeps hit/miss
    counters (total and per residue class) plus an exact-extent histogram,
    and registers itself in a process-wide table read by {!snapshots};
    {!last_selection} exposes the most recent routing decision so the VM
    trace can attribute a kernel invocation to the specialization that
    fired. All shared state is domain-safe: counters are atomic, routing
    tables swap by CAS (readers never block), and the last-selection slot is
    domain-local. *)

open Nimble_tensor

type dense_fn = Tensor.t -> Tensor.t -> Tensor.t

(** The routing decision for one call: a residue-specialized kernel
    ([Hit r]), the guarded fallback on an uncovered residue ([Miss r]), the
    extern library kernel, or an exact-extent tuned kernel installed online
    ([Tuned m]). *)
type selection = Hit of int | Miss of int | Extern | Tuned of int

type t

(** [create ~num_kernels ()] generates [num_kernels] of the [tile] (default
    8) possible residue kernels, evenly spaced — the paper's "dispatch/k".
    [num_kernels = 0] means no dispatch: every call takes the guarded
    fallback.
    @param name label used in reports and traces (default ["dense"]). *)
val create : ?name:string -> ?tile:int -> num_kernels:int -> unit -> t

(** The dispatcher's report/trace label (the packed kernel name when created
    by the emitter). *)
val name : t -> string

(** Route every call to a third-party library kernel (the §4.5 extension for
    profiling-selected extern kernels). *)
val set_extern : t -> dense_fn -> unit

(** Select the kernel for runtime extent [m], recording the selection.
    Routing order: exact-extent tuned entry, then extern, then residue
    kernel, then guarded fallback. *)
val select : t -> m:int -> dense_fn

(** Run a dense call through the dispatcher. *)
val run : t -> Tensor.t -> Tensor.t -> Tensor.t

(** [(hits, misses)]: calls served by a residue-specialized kernel vs the
    fallback (tuned and extern calls are counted separately). *)
val stats : t -> int * int

(** Calls served by an exact-extent tuned kernel since the last reset. *)
val tuned_calls : t -> int

(** Number of generated kernel bodies — the code-size cost of dispatch —
    including currently installed tuned entries. *)
val code_size : t -> int

(** {2 Online specialization} *)

(** [install_tuned t ~extent ~tile_m] publishes a [tile_m]-tiled kernel for
    exact extent [extent] into the live table with one CAS — calls mid-way
    through {!select} keep the table they loaded, so installs never pause or
    corrupt routing (and every kernel computes bitwise-identical results, so
    the swap is invisible in outputs). Re-installing an extent replaces its
    entry; past [max_exact] entries (default 16) the oldest is evicted.
    Raises [Invalid_argument] on non-positive [extent]/[tile_m]. *)
val install_tuned : ?max_exact:int -> t -> extent:int -> tile_m:int -> unit

(** [tile_m] of the tuned kernel installed for [extent], if any — lets the
    hotness scanner and warm restarts skip already-specialized extents. *)
val pretuned : t -> extent:int -> int option

(** Installed (extent, tile_m) decisions sorted by extent — the rows
    [Serve.Cache.persist_tunes] writes into the NMBLEXE4 tune table. *)
val tuned_decisions : t -> (int * int) list

(** Exact-extent dispatch counts since the last reset, sorted by extent —
    the hotness signal the autotune scan reads. *)
val extent_histogram : t -> (int * int) list

(** The [(n, k)] weight dimensions of the most recent {!run} call, telling
    the background tuner what problem size to tune for; [None] until the
    dispatcher has run. *)
val observed_dims : t -> (int * int) option

(** {2 Observability} *)

(** The calling domain's most recent routing decision, as
    [(dispatcher name, selection)] — read (and cleared with
    {!clear_last_selection}) by the VM interpreter around each
    packed-kernel call to tag the kernel's trace span. Domain-local: a
    serve worker never observes selections made on other domains. When
    several dense calls are fused into one kernel, the last call wins. *)
val last_selection : unit -> (string * selection) option

(** Clear the calling domain's {!last_selection} slot. *)
val clear_last_selection : unit -> unit

(** Counters of one dispatcher at one instant (the [dispatch] rows of the
    profiler report; see [docs/OBSERVABILITY.md]). *)
type snapshot = {
  snap_name : string;
  snap_tile : int;
  snap_kernels : int;  (** residue-specialized bodies generated *)
  snap_hits : int;
  snap_misses : int;
  snap_extern_calls : int;
  snap_tuned_calls : int;
  snap_installs : int;
  snap_evictions : int;
  snap_residue_hits : (int * int) list;  (** residue -> hits, nonzero only *)
  snap_tuned : (int * int) list;  (** extent -> tile_m installed *)
}

(** One dispatcher's counters at this instant. *)
val snapshot_of : t -> snapshot

(** Every dispatcher created in this process, oldest first — the autotune
    scan walks this. *)
val registered : unit -> t list

(** The most recently created dispatcher named [name] (relinks re-emit
    dispatchers; newest wins), if any. *)
val find : name:string -> t option

(** Per-dispatcher counters for every dispatcher created in this process,
    oldest first; dispatchers that never fired are excluded. *)
val snapshots : unit -> snapshot list

(** Zero every registered dispatcher's counters and extent histograms,
    scoping the next {!snapshots} to one measurement window; installed
    tuned entries survive. *)
val reset_counters : unit -> unit
