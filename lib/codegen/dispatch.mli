(** Shape-based kernel dispatch for symbolic codegen (paper §4.5).

    For a dense kernel whose row extent [m] is symbolic, codegen emits up to
    [tile] residue-specialized kernels; at runtime the dispatcher selects
    one from [m mod tile], falling back to the boundary-guarded kernel for
    uncovered residues — trading code size against the boundary-check cost
    Figure 3 measures. It can also route to a profiled third-party library
    kernel.

    Dispatchers also feed the observability layer: each keeps hit/miss
    counters (total and per residue class) and registers itself in a
    process-wide table read by {!snapshots}, and {!last_selection} exposes
    the most recent routing decision so the VM trace can attribute a kernel
    invocation to the specialization that fired. *)

open Nimble_tensor

type dense_fn = Tensor.t -> Tensor.t -> Tensor.t

(** The routing decision for one call: a residue-specialized kernel
    ([Hit r]), the guarded fallback on an uncovered residue ([Miss r]), or
    the extern library kernel. *)
type selection = Hit of int | Miss of int | Extern

type t

(** [create ~num_kernels ()] generates [num_kernels] of the [tile] (default
    8) possible residue kernels, evenly spaced — the paper's "dispatch/k".
    [num_kernels = 0] means no dispatch: every call takes the guarded
    fallback.
    @param name label used in reports and traces (default ["dense"]). *)
val create : ?name:string -> ?tile:int -> num_kernels:int -> unit -> t

(** Route every call to a third-party library kernel (the §4.5 extension for
    profiling-selected extern kernels). *)
val set_extern : t -> dense_fn -> unit

(** Select the kernel for runtime extent [m], recording the selection. *)
val select : t -> m:int -> dense_fn

(** Run a dense call through the dispatcher. *)
val run : t -> Tensor.t -> Tensor.t -> Tensor.t

(** [(hits, misses)]: calls served by a specialized kernel vs the fallback. *)
val stats : t -> int * int

(** Number of generated kernel bodies — the code-size cost of dispatch. *)
val code_size : t -> int

(** {2 Observability} *)

(** The most recent routing decision in this process, as
    [(dispatcher name, selection)] — read (and cleared with
    {!clear_last_selection}) by the VM interpreter around each
    packed-kernel call to tag the kernel's trace span. When several dense
    calls are fused into one kernel, the last call wins. *)
val last_selection : unit -> (string * selection) option

val clear_last_selection : unit -> unit

(** Counters of one dispatcher at one instant (the [dispatch] rows of the
    profiler report; see [docs/OBSERVABILITY.md]). *)
type snapshot = {
  snap_name : string;
  snap_tile : int;
  snap_kernels : int;  (** residue-specialized bodies generated *)
  snap_hits : int;
  snap_misses : int;
  snap_extern_calls : int;
  snap_residue_hits : (int * int) list;  (** residue -> hits, nonzero only *)
}

val snapshot_of : t -> snapshot

(** Per-dispatcher counters for every dispatcher created in this process,
    oldest first; dispatchers that never fired are excluded. *)
val snapshots : unit -> snapshot list

(** Zero every registered dispatcher's counters, scoping the next
    {!snapshots} to one measurement window. *)
val reset_counters : unit -> unit
