(** Lowering fused primitive functions to executable kernels.

    A primitive function (produced by the fusion pass) is a straight-line
    dataflow of operator calls. Lowering turns it into a {!Kernel.t} closure.
    [dense] calls inside the primitive are routed through the symbolic
    residue {!Dispatch} when one is configured — this is where symbolic
    codegen plugs into the pipeline. Every executed op reports to {!Trace}. *)

open Nimble_tensor
open Nimble_ir

exception Lower_error of string

let err fmt = Fmt.kstr (fun s -> raise (Lower_error s)) fmt

type value = VTensor of Tensor.t | VTuple of value list

let as_tensor = function
  | VTensor t -> t
  | VTuple _ -> err "expected a tensor value inside a primitive body"

(** Operators a primitive body may contain. Control flow never appears in
    primitives: fusion groups only dataflow. *)
let rec eval_body ~dense_impl env (e : Expr.t) : value =
  match e with
  | Expr.Var v -> (
      match Hashtbl.find_opt env v.Expr.vid with
      | Some value -> value
      | None -> err "unbound variable %%%s in primitive body" v.Expr.vname)
  | Expr.Const t -> VTensor t
  | Expr.Tuple es -> VTuple (List.map (eval_body ~dense_impl env) es)
  | Expr.Proj (e1, i) -> (
      match eval_body ~dense_impl env e1 with
      | VTuple vs -> List.nth vs i
      | VTensor _ -> err "projection from tensor in primitive body")
  | Expr.Let (v, bound, body) ->
      Hashtbl.replace env v.Expr.vid (eval_body ~dense_impl env bound);
      eval_body ~dense_impl env body
  | Expr.Call { callee = Expr.Op "dense"; args; attrs } -> (
      let ins = List.map (fun a -> as_tensor (eval_body ~dense_impl env a)) args in
      match (dense_impl, ins) with
      | Some impl, [ a; w ] ->
          let out = impl a w in
          Trace.record_op "dense" ~attrs [ a; w ] [ out ];
          VTensor out
      | _, ins -> (
          match Trace.eval_op "dense" ~attrs ins with
          | [ out ] -> VTensor out
          | _ -> err "dense produced multiple outputs"))
  | Expr.Call { callee = Expr.Op name; args; attrs } -> (
      let ins = List.map (fun a -> as_tensor (eval_body ~dense_impl env a)) args in
      match Trace.eval_op name ~attrs ins with
      | [ out ] -> VTensor out
      | outs -> VTuple (List.map (fun t -> VTensor t) outs))
  | Expr.Call _ -> err "primitive body may only call operators"
  | Expr.Global _ | Expr.Op _ | Expr.Ctor _ | Expr.Fn _ | Expr.If _ | Expr.Match _ ->
      err "control flow or function values inside a primitive body"

let rec flatten_value = function
  | VTensor t -> [ t ]
  | VTuple vs -> List.concat_map flatten_value vs

(** [lower ~name fn] compiles primitive [fn] into a kernel. *)
let lower ?dispatch ~name (fn : Expr.fn) : Kernel.t =
  let dense_impl = Option.map (fun d a w -> Dispatch.run d a w) dispatch in
  let run (args : Tensor.t list) : Tensor.t list =
    if List.length args <> List.length fn.Expr.params then
      err "%s: expected %d arguments, got %d" name (List.length fn.Expr.params)
        (List.length args);
    let env = Hashtbl.create 16 in
    List.iter2
      (fun (p : Expr.var) a -> Hashtbl.replace env p.Expr.vid (VTensor a))
      fn.Expr.params args;
    flatten_value (eval_body ~dense_impl env fn.Expr.body)
  in
  Kernel.make ~name run

(** Compose the shape functions of the ops inside a primitive (§4.2): the
    shape function of a fused operator is the composition of its members'
    shape functions, which is only well-defined when every member is
    data-independent — guaranteed by the fusion policy. *)
let shape_func_of_primitive ~name (fn : Expr.fn) : Shape.t list -> Shape.t list =
 fun in_shapes ->
  if List.length in_shapes <> List.length fn.Expr.params then
    err "%s shape func: expected %d input shapes" name (List.length fn.Expr.params);
  let env : (int, Shape.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter2
    (fun (p : Expr.var) s -> Hashtbl.replace env p.Expr.vid [ s ])
    fn.Expr.params in_shapes;
  let rec go (e : Expr.t) : Shape.t list =
    match e with
    | Expr.Var v -> (
        match Hashtbl.find_opt env v.Expr.vid with
        | Some s -> s
        | None -> err "%s shape func: unbound variable" name)
    | Expr.Const t -> [ Tensor.shape t ]
    | Expr.Tuple es -> List.concat_map go es
    | Expr.Proj (e1, i) ->
        let shapes = go e1 in
        if i >= List.length shapes then err "%s shape func: bad projection" name;
        [ List.nth shapes i ]
    | Expr.Let (v, bound, body) ->
        Hashtbl.replace env v.Expr.vid (go bound);
        go body
    | Expr.Call { callee = Expr.Op op; args; attrs } ->
        let inputs =
          List.concat_map
            (fun a -> List.map Nimble_shape.Shape_func.shape_only (go a))
            args
        in
        Nimble_shape.Shape_func.run op ~attrs inputs
    | _ -> err "%s shape func: unsupported construct" name
  in
  go fn.Expr.body

(** Whether every op call site in a primitive has a statically-known output
    shape (data-independent or dominance-proven) — the precondition for the
    compositions above. *)
let all_data_independent (fn : Expr.fn) =
  let ok = ref true in
  Expr.iter
    (function
      | Expr.Call { callee = Expr.Op name; attrs; _ } ->
          if not (Nimble_shape.Shape_func.fusible_site ~name ~attrs) then ok := false
      | _ -> ())
    fn.Expr.body;
  !ok

(** Compose the shape function of a primitive containing dominance-proven
    data-dependent members. Unlike {!shape_func_of_primitive} it takes the
    primitive's input {e values}; data flows lazily, so only the (scalar-
    sized) chains feeding proven sites are ever evaluated at shape-function
    time — heavy member ops are never forced. *)
let shape_func_of_primitive_values ~name (fn : Expr.fn) :
    Tensor.t list -> Shape.t list =
 fun ins ->
  if List.length ins <> List.length fn.Expr.params then
    err "%s shape func: expected %d input values" name (List.length fn.Expr.params);
  (* vid -> (output shapes, lazily evaluated output values when available) *)
  let env : (int, Shape.t list * Tensor.t list Lazy.t option) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter2
    (fun (p : Expr.var) t ->
      Hashtbl.replace env p.Expr.vid ([ Tensor.shape t ], Some (lazy [ t ])))
    fn.Expr.params ins;
  let all_data rs =
    if List.for_all (fun (_, d) -> d <> None) rs then
      Some (lazy (List.concat_map (fun (_, d) -> Lazy.force (Option.get d)) rs))
    else None
  in
  let rec go (e : Expr.t) : Shape.t list * Tensor.t list Lazy.t option =
    match e with
    | Expr.Var v -> (
        match Hashtbl.find_opt env v.Expr.vid with
        | Some r -> r
        | None -> err "%s shape func: unbound variable" name)
    | Expr.Const t -> ([ Tensor.shape t ], Some (lazy [ t ]))
    | Expr.Tuple es ->
        let rs = List.map go es in
        (List.concat_map fst rs, all_data rs)
    | Expr.Proj (e1, i) ->
        let shapes, data = go e1 in
        if i >= List.length shapes then err "%s shape func: bad projection" name;
        ( [ List.nth shapes i ],
          Option.map (fun d -> lazy [ List.nth (Lazy.force d) i ]) data )
    | Expr.Let (v, bound, body) ->
        Hashtbl.replace env v.Expr.vid (go bound);
        go body
    | Expr.Call { callee = Expr.Op op; args; attrs } ->
        let rs = List.map go args in
        let needs_values =
          match Nimble_shape.Shape_func.classify ~name:op ~attrs with
          | Nimble_shape.Shape_func.Site_static -> false
          | Nimble_shape.Shape_func.Site_proven _ -> true
          | site ->
              err "%s shape func: unproven dynamic member %s (%s)" name op
                (Nimble_shape.Shape_func.site_to_string site)
        in
        let inputs =
          List.concat_map
            (fun (shapes, data) ->
              if needs_values then
                match data with
                | Some d -> List.map Nimble_shape.Shape_func.with_data (Lazy.force d)
                | None -> err "%s shape func: %s needs a value that is unavailable" name op
              else List.map Nimble_shape.Shape_func.shape_only shapes)
            rs
        in
        let shapes = Nimble_shape.Shape_func.run op ~attrs inputs in
        let data =
          Option.map
            (fun d -> lazy (Trace.eval_op op ~attrs (Lazy.force d)))
            (all_data rs)
        in
        (shapes, data)
    | _ -> err "%s shape func: unsupported construct" name
  in
  fst (go fn.Expr.body)
