(** Reference execution of a single primitive operator.

    This is the "kernel library" every executor in the repo shares: the VM's
    packed functions, the baselines' eager dispatch, and constant folding all
    bottom out here. Heavy ops ([dense]) may be overridden by tuned kernels
    from {!Dense_kernels} at lowering time.

    Every route out of here executes on the [Nimble_parallel] domain pool:
    [dense]/[matmul]/[batch_matmul] partition over output rows, elementwise
    maps over elements, [softmax]/[layer_norm] over rows, and single-axis
    reductions over output elements — all grain-gated so small dynamic
    shapes stay sequential, and all bitwise-identical to
    [NIMBLE_NUM_DOMAINS=1] (see [docs/PARALLELISM.md]). *)

open Nimble_tensor
open Nimble_ir

exception Eval_error of string

let err fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

let one = function
  | [ t ] -> t
  | ts -> err "expected 1 argument, got %d" (List.length ts)

let two = function
  | [ a; b ] -> (a, b)
  | ts -> err "expected 2 arguments, got %d" (List.length ts)

let three = function
  | [ a; b; c ] -> (a, b, c)
  | ts -> err "expected 3 arguments, got %d" (List.length ts)

(** [eval name ~attrs args] runs operator [name] and returns its outputs
    (singleton for all ops except [split]). *)
let eval name ~(attrs : Attrs.t) (args : Tensor.t list) : Tensor.t list =
  match name with
  | "add" -> let a, b = two args in [ Ops_elem.add a b ]
  | "subtract" -> let a, b = two args in [ Ops_elem.sub a b ]
  | "multiply" -> let a, b = two args in [ Ops_elem.mul a b ]
  | "divide" -> let a, b = two args in [ Ops_elem.div a b ]
  | "maximum" -> let a, b = two args in [ Ops_elem.maximum a b ]
  | "minimum" -> let a, b = two args in [ Ops_elem.minimum a b ]
  | "equal" -> let a, b = two args in [ Ops_elem.equal a b ]
  | "less" -> let a, b = two args in [ Ops_elem.less a b ]
  | "greater" -> let a, b = two args in [ Ops_elem.greater a b ]
  | "less_equal" -> let a, b = two args in [ Ops_elem.less_equal a b ]
  | "greater_equal" -> let a, b = two args in [ Ops_elem.greater_equal a b ]
  | "not_equal" -> let a, b = two args in [ Ops_elem.not_equal a b ]
  | "logical_and" -> let a, b = two args in [ Ops_elem.logical_and a b ]
  | "logical_or" -> let a, b = two args in [ Ops_elem.logical_or a b ]
  | "logical_not" -> [ Ops_elem.logical_not (one args) ]
  | "power" -> let a, b = two args in [ Ops_elem.pow a b ]
  | "erf" -> [ Ops_elem.erf (one args) ]
  | "where" -> let c, a, b = three args in [ Ops_elem.where c a b ]
  | "log_softmax" ->
      let axis = Attrs.get_int ~default:(-1) attrs "axis" in
      [ Ops_nn.log_softmax ~axis (one args) ]
  | "negative" -> [ Ops_elem.neg (one args) ]
  | "abs" -> [ Ops_elem.abs (one args) ]
  | "exp" -> [ Ops_elem.exp (one args) ]
  | "log" -> [ Ops_elem.log (one args) ]
  | "sqrt" -> [ Ops_elem.sqrt (one args) ]
  | "tanh" -> [ Ops_elem.tanh (one args) ]
  | "sigmoid" -> [ Ops_elem.sigmoid (one args) ]
  | "relu" -> [ Ops_elem.relu (one args) ]
  | "gelu" -> [ Ops_elem.gelu (one args) ]
  | "cast" ->
      let dt =
        match Attrs.find_str attrs "dtype" with
        | Some s -> Option.get (Dtype.of_string s)
        | None -> err "cast: missing dtype"
      in
      [ Tensor.astype (one args) dt ]
  | "dense" -> let a, w = two args in [ Ops_matmul.dense a w ]
  | "matmul" -> let a, b = two args in [ Ops_matmul.matmul a b ]
  | "batch_matmul" -> let a, b = two args in [ Ops_matmul.batch_matmul a b ]
  | "bias_add" ->
      let a, b = two args in
      [ Ops_elem.add a b ]
  | "conv2d" ->
      let a, w = two args in
      let stride = Attrs.get_int ~default:1 attrs "stride" in
      let padding = Attrs.get_int ~default:0 attrs "padding" in
      [ Ops_nn.conv2d ~stride ~padding a w ]
  | "max_pool2d" ->
      let window = Attrs.get_int attrs "window" in
      let stride = Attrs.get_int ~default:2 attrs "stride" in
      [ Ops_nn.max_pool2d ~stride ~window (one args) ]
  | "avg_pool2d" ->
      let window = Attrs.get_int attrs "window" in
      let stride = Attrs.get_int ~default:2 attrs "stride" in
      [ Ops_nn.avg_pool2d ~stride ~window (one args) ]
  | "global_avg_pool2d" -> [ Ops_nn.global_avg_pool2d (one args) ]
  | "softmax" ->
      let axis = Attrs.get_int ~default:(-1) attrs "axis" in
      [ Ops_nn.softmax ~axis (one args) ]
  | "layer_norm" ->
      let a, gamma, beta = three args in
      [ Ops_nn.layer_norm a ~gamma ~beta ]
  | "batch_norm" -> (
      match args with
      | [ a; gamma; beta; mean; var ] -> [ Ops_nn.batch_norm a ~gamma ~beta ~mean ~var ]
      | _ -> err "batch_norm: expected 5 arguments")
  | "embedding" -> let t, ids = two args in [ Ops_nn.embedding t ids ]
  | "reshape" ->
      let target = Array.of_list (Attrs.get_ints attrs "newshape") in
      [ Tensor.reshape (one args) target ]
  | "transpose" ->
      let axes = Option.map Array.of_list (Attrs.find_ints attrs "axes") in
      [ Ops_shape.transpose ?axes (one args) ]
  | "expand_dims" ->
      let t = one args in
      [ Tensor.reshape t (Shape.insert_axis (Tensor.shape t) (Attrs.get_int attrs "axis")) ]
  | "squeeze" ->
      let t = one args in
      let axis =
        Shape.normalize_axis ~rank:(Tensor.rank t) (Attrs.get_int attrs "axis")
      in
      if (Tensor.shape t).(axis) <> 1 then err "squeeze: axis %d not 1" axis;
      [ Tensor.reshape t (Shape.remove_axis (Tensor.shape t) axis) ]
  | "concat" -> [ Ops_shape.concat ~axis:(Attrs.get_int attrs "axis") args ]
  | "split" ->
      Ops_shape.split ~axis:(Attrs.get_int attrs "axis")
        ~sections:(Attrs.get_int attrs "sections")
        (one args)
  | "strided_slice" ->
      let begins = Array.of_list (Attrs.get_ints attrs "begins") in
      let ends = Array.of_list (Attrs.get_ints attrs "ends") in
      [ Ops_shape.strided_slice ~begins ~ends (one args) ]
  | "take" ->
      let d, i = two args in
      [ Ops_shape.take ~axis:(Attrs.get_int ~default:0 attrs "axis") d i ]
  | "tile" -> [ Ops_shape.tile ~reps:(Array.of_list (Attrs.get_ints attrs "reps")) (one args) ]
  | "sum" | "max" | "min" | "mean" -> (
      let t = one args in
      let keepdims = Attrs.get_bool attrs "keepdims" in
      let axis = Attrs.find_int attrs "axis" in
      match name with
      | "sum" -> [ Ops_reduce.sum ?axis ~keepdims t ]
      | "max" -> [ Ops_reduce.max ?axis ~keepdims t ]
      | "min" -> [ Ops_reduce.min ?axis ~keepdims t ]
      | _ -> [ Ops_reduce.mean ?axis ~keepdims t ])
  | "argmax" -> [ Ops_reduce.argmax ~axis:(Attrs.get_int attrs "axis") (one args) ]
  | "arange" ->
      let start, stop, step = three args in
      let dt =
        match Attrs.find_str attrs "dtype" with
        | Some s -> Option.value ~default:Dtype.F32 (Dtype.of_string s)
        | None -> Dtype.F32
      in
      [ Ops_shape.arange ~dtype:dt ~start:(Tensor.item start) ~stop:(Tensor.item stop)
          ~step:(Tensor.item step) () ]
  | "unique" -> [ Ops_shape.unique (one args) ]
  | "nms" ->
      let iou = Attrs.get_float ~default:0.5 attrs "iou" in
      let score = Attrs.get_float ~default:0.0 attrs "score" in
      [ Ops_nn.nms ~iou_threshold:iou ~score_threshold:score (one args) ]
  | "shape_of" -> [ Tensor.shape_tensor (one args) ]
  | "reshape_tensor" ->
      let t, shape = two args in
      [ Tensor.reshape t (Tensor.to_shape shape) ]
  | "device_copy" -> [ Tensor.copy (one args) ]
  | _ -> err "op_eval: no kernel for operator %s" name

let eval1 name ~attrs args = one (eval name ~attrs args)

(** FLOP estimate for an operator invocation — consumed by the platform cost
    models in [Nimble_perfsim]. *)
let flops name ~(attrs : Attrs.t) (in_shapes : Shape.t list) (out_shapes : Shape.t list) =
  let out_elems = List.fold_left (fun acc s -> acc + Shape.numel s) 0 out_shapes in
  match (name, in_shapes) with
  | "dense", [ d; w ] -> 2 * d.(0) * d.(1) * w.(0)
  | "matmul", [ a; b ] -> 2 * a.(0) * a.(1) * b.(1)
  | "batch_matmul", [ a; b ] -> 2 * a.(0) * a.(1) * a.(2) * b.(2)
  | "conv2d", [ _d; w ] ->
      let per_out = 2 * w.(1) * w.(2) * w.(3) in
      ignore attrs;
      out_elems * per_out
  | ("exp" | "log" | "tanh" | "sigmoid" | "gelu" | "softmax" | "erf"), _ ->
      8 * out_elems (* transcendental: ~8 flops each *)
  | ("layer_norm" | "batch_norm"), _ -> 8 * out_elems
  | _ -> out_elems
