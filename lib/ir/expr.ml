(** Expressions of the Nimble IR: a small functional language over tensors
    with let-binding, conditionals, functions/closures, tuples, ADT
    construction and pattern matching — enough to express dynamic control
    flow, dynamic data structures and dynamic shapes (paper §2). *)

open Nimble_tensor

type var = { vid : int; vname : string; mutable vty : Ty.t option }

type t =
  | Var of var
  | Global of string  (** reference to a module-level function *)
  | Op of string  (** reference to a primitive operator *)
  | Ctor of Adt.ctor
  | Const of Tensor.t
  | Tuple of t list
  | Proj of t * int
  | Call of { callee : t; args : t list; attrs : Attrs.t }
  | Fn of fn
  | Let of var * t * t
  | If of t * t * t
  | Match of t * clause list

and fn = { params : var list; ret_ty : Ty.t option; body : t; fn_attrs : Attrs.t }

and clause = { pat : pat; rhs : t }

and pat = Pwild | Pvar of var | Pctor of Adt.ctor * pat list

let var_counter = ref 0

let fresh_var ?ty name =
  incr var_counter;
  { vid = !var_counter; vname = name; vty = ty }

let var v = Var v
let const t = Const t
let const_scalar ?dtype v = Const (Tensor.scalar ?dtype v)
let const_int ?(dtype = Dtype.I64) v = Const (Tensor.of_int_array ~dtype [||] [| v |])

let call ?(attrs = Attrs.empty) callee args = Call { callee; args; attrs }
let op_call ?(attrs = Attrs.empty) name args = call ~attrs (Op name) args

let fn_def ?(attrs = Attrs.empty) ?ret_ty params body : fn =
  { params; ret_ty; body; fn_attrs = attrs }

let fn ?attrs ?ret_ty params body = Fn (fn_def ?attrs ?ret_ty params body)

let let_ v bound body = Let (v, bound, body)

(** [lets [(v1, e1); ...] body] builds nested lets. *)
let lets bindings body =
  List.fold_right (fun (v, e) acc -> Let (v, e, acc)) bindings body

let ctor_call c args = call (Ctor c) args

(* ------------------------------------------------------------------ *)
(* Traversal                                                           *)
(* ------------------------------------------------------------------ *)

(** Direct children of an expression (post-order helpers build on this). *)
let children = function
  | Var _ | Global _ | Op _ | Ctor _ | Const _ -> []
  | Tuple es -> es
  | Proj (e, _) -> [ e ]
  | Call { callee; args; _ } -> callee :: args
  | Fn { body; _ } -> [ body ]
  | Let (_, bound, body) -> [ bound; body ]
  | If (c, t, f) -> [ c; t; f ]
  | Match (scrut, clauses) -> scrut :: List.map (fun c -> c.rhs) clauses

let rec iter f e =
  f e;
  List.iter (iter f) (children e)

(** Whether variable [vid] occurs as a use anywhere in [e] (including
    nested functions and branches). *)
let uses_var vid e =
  let found = ref false in
  iter (function Var v when v.vid = vid -> found := true | _ -> ()) e;
  !found

(** Rebuild an expression, applying [f] bottom-up to every node. *)
let rec map_bottom_up f e =
  let recur = map_bottom_up f in
  let rebuilt =
    match e with
    | Var _ | Global _ | Op _ | Ctor _ | Const _ -> e
    | Tuple es -> Tuple (List.map recur es)
    | Proj (e1, i) -> Proj (recur e1, i)
    | Call { callee; args; attrs } ->
        Call { callee = recur callee; args = List.map recur args; attrs }
    | Fn ({ body; _ } as fn) -> Fn { fn with body = recur body }
    | Let (v, bound, body) -> Let (v, recur bound, recur body)
    | If (c, t, f') -> If (recur c, recur t, recur f')
    | Match (scrut, clauses) ->
        Match (recur scrut, List.map (fun c -> { c with rhs = recur c.rhs }) clauses)
  in
  f rebuilt

let rec pat_vars = function
  | Pwild -> []
  | Pvar v -> [ v ]
  | Pctor (_, ps) -> List.concat_map pat_vars ps

module Var_set = Set.Make (Int)

(** Free variables (by [vid]) of an expression. *)
let free_vars e =
  let rec go bound acc = function
    | Var v -> if Var_set.mem v.vid bound then acc else v :: acc
    | Global _ | Op _ | Ctor _ | Const _ -> acc
    | Tuple es -> List.fold_left (go bound) acc es
    | Proj (e1, _) -> go bound acc e1
    | Call { callee; args; _ } -> List.fold_left (go bound) (go bound acc callee) args
    | Fn { params; body; _ } ->
        let bound = List.fold_left (fun b v -> Var_set.add v.vid b) bound params in
        go bound acc body
    | Let (v, e1, body) ->
        let acc = go bound acc e1 in
        go (Var_set.add v.vid bound) acc body
    | If (c, t, f) -> go bound (go bound (go bound acc c) t) f
    | Match (scrut, clauses) ->
        let acc = go bound acc scrut in
        List.fold_left
          (fun acc { pat; rhs } ->
            let bound =
              List.fold_left (fun b v -> Var_set.add v.vid b) bound (pat_vars pat)
            in
            go bound acc rhs)
          acc clauses
  in
  let vars = go Var_set.empty [] e in
  (* dedupe preserving first-seen order *)
  let seen = Hashtbl.create 16 in
  List.rev vars
  |> List.filter (fun v ->
         if Hashtbl.mem seen v.vid then false
         else begin
           Hashtbl.add seen v.vid ();
           true
         end)

(** Substitute variables by [vid]. Capture is not an issue because all vars
    in a well-formed module have globally unique ids. *)
let substitute subst e =
  map_bottom_up
    (function
      | Var v as e -> ( match List.assoc_opt v.vid subst with Some e' -> e' | None -> e)
      | e -> e)
    e

(** Count nodes, for pass statistics and tests. *)
let size e =
  let n = ref 0 in
  iter (fun _ -> incr n) e;
  !n

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)
(* ------------------------------------------------------------------ *)

let pp_var ppf v =
  match v.vty with
  | Some ty -> Fmt.pf ppf "%%%s#%d: %a" v.vname v.vid Ty.pp ty
  | None -> Fmt.pf ppf "%%%s#%d" v.vname v.vid

let rec pp ppf = function
  | Var v -> Fmt.pf ppf "%%%s#%d" v.vname v.vid
  | Global g -> Fmt.pf ppf "@@%s" g
  | Op o -> Fmt.string ppf o
  | Ctor c -> Adt.pp_ctor ppf c
  | Const t ->
      if Tensor.numel t = 1 then Fmt.pf ppf "%g" (Tensor.get_float t 0)
      else Fmt.pf ppf "const%a" Shape.pp (Tensor.shape t)
  | Tuple es -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any ", ") pp) es
  | Proj (e, i) -> Fmt.pf ppf "%a.%d" pp e i
  | Call { callee; args; attrs } ->
      if Attrs.is_empty attrs then
        Fmt.pf ppf "%a(%a)" pp callee Fmt.(list ~sep:(any ", ") pp) args
      else
        Fmt.pf ppf "%a(%a) %a" pp callee Fmt.(list ~sep:(any ", ") pp) args Attrs.pp attrs
  | Fn { params; body; _ } ->
      Fmt.pf ppf "@[<v 2>fn (%a) {@ %a@]@ }" Fmt.(list ~sep:(any ", ") pp_var) params pp body
  | Let (v, bound, body) ->
      Fmt.pf ppf "@[<v>let %a = %a;@ %a@]" pp_var v pp bound pp body
  | If (c, t, f) ->
      Fmt.pf ppf "@[<v 2>if (%a) {@ %a@;<1 -2>} else {@ %a@;<1 -2>}@]" pp c pp t pp f
  | Match (scrut, clauses) ->
      let pp_clause ppf { pat; rhs } = Fmt.pf ppf "| %a => %a" pp_pat pat pp rhs in
      Fmt.pf ppf "@[<v 2>match (%a) {@ %a@]@ }" pp scrut
        Fmt.(list ~sep:(any "@ ") pp_clause)
        clauses

and pp_pat ppf = function
  | Pwild -> Fmt.string ppf "_"
  | Pvar v -> pp_var ppf v
  | Pctor (c, ps) ->
      Fmt.pf ppf "%s(%a)" c.Adt.ctor_name Fmt.(list ~sep:(any ", ") pp_pat) ps

let to_string e = Fmt.str "%a" pp e
