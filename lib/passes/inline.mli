(** Inlining of non-recursive global functions.

    Call sites of small, non-recursive globals are replaced by the callee's
    body with parameters let-bound to the arguments; bound variables are
    freshened so the module keeps globally-unique ids; functions left
    unreachable from [main] are pruned. Recursive functions — the encoding
    of dynamic control flow — are never inlined. *)

open Nimble_ir

(** Default body-size ceiling (expression nodes) above which a callee is
    not inlined; {!run}'s [max_size] overrides it. *)
val default_max_size : int

type stats = { mutable inlined : int; mutable pruned : int }

(** Inline eligible calls across the module and prune unreachable
    functions. [max_size] bounds the callee body in IR nodes. *)
val run : ?max_size:int -> Irmod.t -> stats
