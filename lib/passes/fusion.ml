(** Operator fusion with the dynamic-shape fusion policy (paper §4.2).

    Every kernel-op call is first wrapped into a singleton *primitive* — a
    function marked [Primitive] whose body is pure operator dataflow (the
    unit the VM invokes via [InvokePacked]). Pairwise merging to fixpoint
    then fuses a producer primitive into its single consumer when:

    - the TVM-style operator-pattern lattice allows it (elementwise and
      broadcast ops fuse forward into anything up to dense/conv epilogues;
      injective ops fuse among themselves and into reductions; opaque ops
      never fuse), and
    - the paper's dynamic fusion policy holds: every op on both sides has a
      data-independent shape function. An op whose shape function needs
      values (arange, unique, nms) would need access to *intermediate*
      results of the fused group, so it must stay un-fused. *)

open Nimble_ir

let max_group_size = 12

(* Ops that become VM instructions or memory-dialect calls, not kernels. *)
let dialect_op name =
  List.mem name [ "shape_of"; "reshape_tensor"; "device_copy" ]
  || (String.length name > 7 && String.sub name 0 7 = "memory.")

let pattern_rank = function
  | Op.Elemwise -> 0
  | Op.Broadcast -> 1
  | Op.Injective -> 2
  | Op.Comm_reduce -> 3
  | Op.Out_fusable -> 4
  | Op.Opaque -> 5

let max_pattern a b = if pattern_rank a >= pattern_rank b then a else b

(** Can a producer group with pattern [p] fuse into a consumer op/group with
    pattern [c]? Returns the combined pattern. *)
let combine ~producer:p ~consumer:c : Op.pattern option =
  match (p, c) with
  | Op.Opaque, _ | _, Op.Opaque -> None
  | Op.Out_fusable, (Op.Elemwise | Op.Broadcast) -> Some Op.Out_fusable
  | Op.Out_fusable, _ -> None
  | Op.Comm_reduce, _ -> None (* reductions close their group *)
  | (Op.Elemwise | Op.Broadcast | Op.Injective), Op.Comm_reduce -> Some Op.Comm_reduce
  | (Op.Elemwise | Op.Broadcast | Op.Injective), Op.Out_fusable ->
      (* injective producers do not fuse into dense/conv inputs *)
      None
  | (Op.Elemwise | Op.Broadcast | Op.Injective), (Op.Elemwise | Op.Broadcast | Op.Injective)
    ->
      Some (max_pattern p c)

(* ------------------------------------------------------------------ *)
(* Primitive metadata                                                  *)
(* ------------------------------------------------------------------ *)

let prim_counter = ref 0

let primitive_attrs ~ops ~pattern : Attrs.t =
  incr prim_counter;
  let name = Fmt.str "fused_%s_%d" (String.concat "_" ops) !prim_counter in
  Attrs.empty
  |> fun a ->
  Attrs.set a "Primitive" (Attrs.Int 1)
  |> fun a ->
  Attrs.set a "name" (Attrs.Str name)
  |> fun a ->
  Attrs.set a "ops" (Attrs.Str (String.concat "," ops))
  |> fun a -> Attrs.set a "pattern" (Attrs.Str (Op.pattern_to_string pattern))

let is_primitive (fn : Expr.fn) = Attrs.get_int ~default:0 fn.Expr.fn_attrs "Primitive" = 1

let primitive_name (fn : Expr.fn) =
  match Attrs.find_str fn.Expr.fn_attrs "name" with
  | Some n -> n
  | None -> "prim"

let primitive_ops (fn : Expr.fn) =
  match Attrs.find_str fn.Expr.fn_attrs "ops" with
  | Some s -> String.split_on_char ',' s
  | None -> []

let primitive_pattern (fn : Expr.fn) =
  match Attrs.find_str fn.Expr.fn_attrs "pattern" with
  | Some "elemwise" -> Op.Elemwise
  | Some "broadcast" -> Op.Broadcast
  | Some "injective" -> Op.Injective
  | Some "comm_reduce" -> Op.Comm_reduce
  | Some "out_fusable" -> Op.Out_fusable
  | _ -> Op.Opaque

(** Every op call site in the primitive has a statically-known output
    shape: registered data-independent, or proven by the Classify
    shape-value dominance pass. Site-aware — the [proven] attribute
    survives wrapping because [wrap_call] keeps op attrs in the body. *)
let data_independent (fn : Expr.fn) =
  let body_ops = ref [] in
  let ok = ref true in
  Expr.iter
    (function
      | Expr.Call { callee = Expr.Op name; attrs; _ } ->
          body_ops := name :: !body_ops;
          if not (Nimble_shape.Shape_func.fusible_site ~name ~attrs) then ok := false
      | _ -> ())
    fn.Expr.body;
  !ok
  && (* ops recorded on the group but absent from the body (hand-built
        groups) carry no site attrs; judge them by registry mode *)
  List.for_all
    (fun op ->
      List.mem op !body_ops || Nimble_shape.Shape_func.fusible_as_consumer op)
    (primitive_ops fn)

let group_size (fn : Expr.fn) = List.length (primitive_ops fn)

(* ------------------------------------------------------------------ *)
(* Step 1: wrap kernel-op calls into singleton primitives              *)
(* ------------------------------------------------------------------ *)

(* Type of an atom, when known (infer runs before fusion). *)
let atom_ty : Expr.t -> Ty.t option = function
  | Expr.Var v -> v.Expr.vty
  | Expr.Const t ->
      Some (Ty.tensor_of_shape ~dtype:(Nimble_tensor.Tensor.dtype t) (Nimble_tensor.Tensor.shape t))
  | _ -> None

let wrap_call name args attrs : Expr.t =
  let op_def = Op.get name in
  let params =
    List.mapi (fun i a -> Expr.fresh_var ?ty:(atom_ty a) (Fmt.str "p%d" i)) args
  in
  let body = Expr.op_call ~attrs name (List.map Expr.var params) in
  (* A proven data-dependent site computes a statically-shaped result
     elementwise over its (value) inputs; its registered Opaque pattern
     exists only because its shape needs values — which the dominance
     proof just discharged. Upgrade so fusion can absorb it. *)
  let pattern =
    match op_def.Op.pattern with
    | Op.Opaque
      when (match Nimble_shape.Shape_func.classify ~name ~attrs with
           | Nimble_shape.Shape_func.Site_proven _ -> true
           | _ -> false) ->
        Op.Injective
    | p -> p
  in
  let fn_attrs = primitive_attrs ~ops:[ name ] ~pattern in
  Expr.Call
    {
      callee = Expr.Fn { params; ret_ty = None; body; fn_attrs };
      args;
      attrs = Attrs.empty;
    }

let wrap (e : Expr.t) : Expr.t =
  Expr.map_bottom_up
    (function
      | Expr.Call { callee = Expr.Op name; args; attrs }
        when (not (dialect_op name))
             && List.for_all Anf.is_atom args ->
          wrap_call name args attrs
      | e -> e)
    e

(* ------------------------------------------------------------------ *)
(* Step 2: pairwise merge to fixpoint                                  *)
(* ------------------------------------------------------------------ *)

let count_uses vid e =
  let n = ref 0 in
  Expr.iter (function Expr.Var v when v.Expr.vid = vid -> incr n | _ -> ()) e;
  !n

(* Inline producer primitive [pfn]/[pargs] into consumer [cfn]/[cargs] at the
   consumer parameter that receives [vp]. *)
let merge ~vp ~(pfn : Expr.fn) ~pargs ~(cfn : Expr.fn) ~cargs ~pattern : Expr.t =
  (* Find which consumer params receive [vp]. *)
  let pairs = List.combine cfn.Expr.params cargs in
  let receiving, keeping =
    List.partition
      (fun (_, arg) -> match arg with Expr.Var v -> v.Expr.vid = vp | _ -> false)
      pairs
  in
  (* Fresh params for the producer's inputs. *)
  let fresh_pparams =
    List.map (fun (p : Expr.var) -> Expr.fresh_var p.Expr.vname ?ty:p.Expr.vty) pfn.Expr.params
  in
  let psubst =
    List.map2
      (fun (old : Expr.var) fresh -> (old.Expr.vid, Expr.Var fresh))
      pfn.Expr.params fresh_pparams
  in
  let pbody = Expr.substitute psubst pfn.Expr.body in
  (* Bind producer output once, substitute for every receiving param. *)
  let pv = Expr.fresh_var "f" in
  let csubst =
    List.map (fun ((p : Expr.var), _) -> (p.Expr.vid, Expr.Var pv)) receiving
  in
  let cbody = Expr.substitute csubst cfn.Expr.body in
  let new_body = Expr.Let (pv, pbody, cbody) in
  let new_params = fresh_pparams @ List.map fst keeping in
  let new_args = pargs @ List.map snd keeping in
  let ops = primitive_ops pfn @ primitive_ops cfn in
  let fn_attrs = primitive_attrs ~ops ~pattern in
  Expr.Call
    {
      callee = Expr.Fn { params = new_params; ret_ty = cfn.Expr.ret_ty; body = new_body; fn_attrs };
      args = new_args;
      attrs = Attrs.empty;
    }

(* Try to fuse [Let (v, prim-call, body)] with a consumer in [body]. *)
let rec fuse_chain (e : Expr.t) : Expr.t * bool =
  match e with
  | Expr.Let
      (v, (Expr.Call { callee = Expr.Fn pfn; args = pargs; _ } as bound), body)
    when is_primitive pfn -> (
      let uses = count_uses v.Expr.vid body in
      match find_consumer v.Expr.vid pfn body with
      | Some rebuild when uses >= 1 ->
          (rebuild ~pfn ~pargs, true)
      | _ ->
          let body', changed = fuse_chain body in
          (Expr.Let (v, bound, body'), changed))
  | Expr.Let (v, bound, body) ->
      let bound', c1 = fuse_inside bound in
      let body', c2 = fuse_chain body in
      (Expr.Let (v, bound', body'), c1 || c2)
  | Expr.If (c, t, f) ->
      let t', c1 = fuse_chain t in
      let f', c2 = fuse_chain f in
      (Expr.If (c, t', f'), c1 || c2)
  | Expr.Match (s, clauses) ->
      let changed = ref false in
      let clauses =
        List.map
          (fun cl ->
            let rhs, c = fuse_chain cl.Expr.rhs in
            if c then changed := true;
            { cl with Expr.rhs })
          clauses
      in
      (Expr.Match (s, clauses), !changed)
  | _ -> fuse_inside e

and fuse_inside (e : Expr.t) : Expr.t * bool =
  match e with
  | Expr.Fn fn when not (is_primitive fn) ->
      let body, changed = fuse_chain fn.Expr.body in
      (Expr.Fn { fn with Expr.body = body }, changed)
  | Expr.If (c, t, f) ->
      let t', c1 = fuse_chain t in
      let f', c2 = fuse_chain f in
      (Expr.If (c, t', f'), c1 || c2)
  | Expr.Match (s, clauses) ->
      let changed = ref false in
      let clauses =
        List.map
          (fun cl ->
            let rhs, c = fuse_chain cl.Expr.rhs in
            if c then changed := true;
            { cl with Expr.rhs })
          clauses
      in
      (Expr.Match (s, clauses), !changed)
  | _ -> (e, false)

(* Search [body] for the unique consumer of [vp]: a directly-following
   primitive call taking [Var vp] as an argument, with [vp] used nowhere
   else. Returns a rebuild function on success. *)
and find_consumer vp (pfn : Expr.fn) (body : Expr.t) :
    (pfn:Expr.fn -> pargs:Expr.t list -> Expr.t) option =
  if count_uses vp body <> 1 then None
  else
    match body with
    | Expr.Let (cv, Expr.Call { callee = Expr.Fn cfn; args = cargs; _ }, rest)
      when is_primitive cfn
           && List.exists
                (function Expr.Var v -> v.Expr.vid = vp | _ -> false)
                cargs -> (
        if
          group_size pfn + group_size cfn > max_group_size
          || not (data_independent pfn && data_independent cfn)
        then None
        else
          match
            combine ~producer:(primitive_pattern pfn) ~consumer:(primitive_pattern cfn)
          with
          | None -> None
          | Some pattern ->
              Some
                (fun ~pfn ~pargs ->
                  let merged = merge ~vp ~pfn ~pargs ~cfn ~cargs ~pattern in
                  Expr.Let (cv, merged, rest)))
    | Expr.Let (cv, bound, rest) when count_uses vp bound = 0 ->
        (* consumer appears later in the chain *)
        Option.map
          (fun rebuild ~pfn ~pargs -> Expr.Let (cv, bound, rebuild ~pfn ~pargs))
          (find_consumer vp pfn rest)
    | _ -> None

let rec fixpoint e =
  let e', changed = fuse_chain e in
  if changed then fixpoint e' else e'

(** Run fusion over a function body (expects ANF). [merge = false] only
    wraps ops into singleton primitives without fusing — the no-fusion
    ablation. *)
let run_fn ?(merge = true) (fn : Expr.fn) : Expr.fn =
  let wrapped = wrap fn.Expr.body in
  { fn with Expr.body = (if merge then fixpoint wrapped else wrapped) }

let run ?(merge = true) (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs m (fun _name fn -> run_fn ~merge fn);
  m

(** Statistics for tests and ablations: primitives and their group sizes. *)
let primitives_of (e : Expr.t) : Expr.fn list =
  let acc = ref [] in
  Expr.iter
    (function
      | Expr.Call { callee = Expr.Fn fn; _ } when is_primitive fn -> acc := fn :: !acc
      | _ -> ())
    e;
  List.rev !acc
