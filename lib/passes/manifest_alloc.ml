(** Manifest allocation (paper §4.3).

    Rewrites the implicit-allocation IR into the explicit memory dialect:
    every primitive call [let v = prim(args)] becomes

    - static output shape:
      {[
        let storage = memory.alloc_storage(const_shape) {dtype, device};
        let out = memory.alloc_tensor(storage, const_shape) {offset=0};
        memory.invoke_mut(prim, args..., out);
        v = out
      ]}
    - dynamic output shape: shape-function invocations are inserted first,
      in a fixed point with the allocations they require:
      {[
        let s0 = shape_of(arg0); ...
        let out_sh = memory.invoke_shape_func(prim, s0, ...) {mode};
        let storage = memory.alloc_storage(out_sh) {dtype, device};
        let out = memory.alloc_tensor(storage, out_sh);
        memory.invoke_mut(prim, args..., out);
        v = out
      ]}

    Data-dependent shape functions receive the argument *values* instead of
    their shapes; upper-bound ones allocate the bound and rely on the kernel
    to report the exact extent (the VM slices accordingly). *)

open Nimble_tensor
open Nimble_ir

exception Alloc_error of string

let err fmt = Fmt.kstr (fun s -> raise (Alloc_error s)) fmt

let shape_tensor_const (s : int array) : Expr.t =
  Expr.Const (Tensor.of_int_array ~dtype:Dtype.I64 [| Array.length s |] s)

(** Site classification of a primitive group. Fusion guarantees that a
    fused group (>1 op) contains only static-or-proven sites; a genuinely
    dynamic site is always a singleton. *)
type group_class =
  | Gstatic  (** every site data-independent *)
  | Gproven
      (** every site static or dominance-proven, at least one proven: the
          group's shape function is composed at compile time from the
          member ops' proofs and receives argument values *)
  | Gdynamic of Nimble_shape.Shape_func.mode  (** singleton dynamic site *)

let classify_group (fn : Expr.fn) : group_class =
  let module SF = Nimble_shape.Shape_func in
  let sites = ref [] in
  Expr.iter
    (function
      | Expr.Call { callee = Expr.Op name; attrs; _ } ->
          (* [get] keeps the historical diagnostic for unregistered ops *)
          ignore (SF.get name);
          sites := SF.classify ~name ~attrs :: !sites
      | _ -> ())
    fn.Expr.body;
  let proven = List.exists (function SF.Site_proven _ -> true | _ -> false) !sites in
  match List.filter_map (function SF.Site_dynamic m -> Some m | _ -> None) !sites with
  | [] -> if proven then Gproven else Gstatic
  | [ m ] when List.length (Fusion.primitive_ops fn) = 1 -> Gdynamic m
  | _ ->
      err "fused primitive with unproven dynamic member: %s"
        (String.concat "," (Fusion.primitive_ops fn))

let out_tensor_tys (v : Expr.var) : Ty.t list =
  match v.Expr.vty with
  | Some (Ty.Tensor _ as ty) -> [ ty ]
  | Some (Ty.Tuple ts) ->
      List.map
        (function Ty.Tensor _ as ty -> ty | ty -> err "primitive output not a tensor: %a" Ty.pp ty)
        ts
  | Some ty -> err "primitive output not a tensor: %a" Ty.pp ty
  | None -> err "manifest_alloc requires typed IR (missing type on %%%s)" v.Expr.vname

let dtype_of_ty = function
  | Ty.Tensor { dtype; _ } -> dtype
  | ty -> err "expected tensor type, got %a" Ty.pp ty

(* Allocate one output of static shape [s]. *)
let alloc_static ~device (dtype : Dtype.t) (s : int array) (k : Expr.t -> Expr.t) : Expr.t =
  let storage_v = Expr.fresh_var ~ty:Ty.Storage "storage" in
  let out_v = Expr.fresh_var ~ty:(Ty.tensor_of_shape ~dtype s) "out" in
  let alloc_storage =
    Expr.op_call
      ~attrs:
        [
          ("alignment", Attrs.Int 64);
          ("device", Attrs.Int device);
          ("dtype", Attrs.Str (Dtype.to_string dtype));
        ]
      "memory.alloc_storage"
      [ shape_tensor_const s ]
  in
  let alloc_tensor =
    Expr.op_call
      ~attrs:
        [
          ("offset", Attrs.Int 0);
          ("const_shape", Attrs.Ints (Array.to_list s));
          ("dtype", Attrs.Str (Dtype.to_string dtype));
        ]
      "memory.alloc_tensor"
      [ Expr.Var storage_v; shape_tensor_const s ]
  in
  Expr.Let (storage_v, alloc_storage, Expr.Let (out_v, alloc_tensor, k (Expr.Var out_v)))

(* Allocate one output whose shape is the runtime tensor [shape_e].
   [out_ty] is the resolved output type; keeping its symbolic ([Dim.Sym])
   dims on the tensor (instead of erasing to [Any]) is what lets the
   symbolic memory planner express this allocation's size as an expression
   over the function's dims. *)
let alloc_dynamic ~device ~rank ~mode (out_ty : Ty.t) (shape_e0 : Expr.t)
    (k : Expr.t -> Expr.t) : Expr.t =
  (* keep ANF: bind a compound shape expression (e.g. a tuple projection) *)
  let bind_shape k2 =
    match shape_e0 with
    | Expr.Var _ | Expr.Const _ -> k2 shape_e0
    | _ ->
        let sv = Expr.fresh_var "sh" in
        Expr.Let (sv, shape_e0, k2 (Expr.Var sv))
  in
  bind_shape @@ fun shape_e ->
  let dtype = dtype_of_ty out_ty in
  let storage_v = Expr.fresh_var ~ty:Ty.Storage "storage" in
  let out_v = Expr.fresh_var ~ty:out_ty "out" in
  let alloc_storage =
    Expr.op_call
      ~attrs:
        [
          ("alignment", Attrs.Int 64);
          ("device", Attrs.Int device);
          ("dtype", Attrs.Str (Dtype.to_string dtype));
        ]
      "memory.alloc_storage" [ shape_e ]
  in
  let alloc_tensor =
    Expr.op_call
      ~attrs:
        [
          ("offset", Attrs.Int 0);
          ("dtype", Attrs.Str (Dtype.to_string dtype));
          ("rank", Attrs.Int rank);
          ("mode", Attrs.Str mode);
        ]
      "memory.alloc_tensor"
      [ Expr.Var storage_v; shape_e ]
  in
  Expr.Let (storage_v, alloc_storage, Expr.Let (out_v, alloc_tensor, k (Expr.Var out_v)))

let rec alloc_many allocs k =
  match allocs with
  | [] -> k []
  | alloc1 :: rest -> alloc1 (fun out -> alloc_many rest (fun outs -> k (out :: outs)))

(* Rewrite one primitive call binding. [device] is the kernel's device id. *)
let rewrite_call ~device (v : Expr.var) (prim : Expr.fn) (prim_expr : Expr.t)
    (args : Expr.t list) (rest : Expr.t) : Expr.t =
  let out_tys = out_tensor_tys v in
  let gclass = classify_group prim in
  let all_static =
    List.for_all (fun ty -> Ty.static_shape ty <> None) out_tys && gclass = Gstatic
  in
  let finish outs =
    let unit_v = Expr.fresh_var ~ty:Ty.unit "u" in
    let invoke =
      Expr.op_call
        ~attrs:
          [
            ("num_inputs", Attrs.Int (List.length args));
            ("device", Attrs.Int device);
            ( "upper_bound",
              Attrs.Bool (gclass = Gdynamic Nimble_shape.Shape_func.Upper_bound) );
          ]
        "memory.invoke_mut"
        ((prim_expr :: args) @ outs)
    in
    let result =
      match outs with [ single ] -> single | many -> Expr.Tuple many
    in
    Expr.Let (unit_v, invoke, Expr.Let (v, result, rest))
  in
  if all_static then
    let allocs =
      List.map
        (fun ty ->
          let s = Option.get (Ty.static_shape ty) in
          alloc_static ~device (dtype_of_ty ty) s)
        out_tys
    in
    alloc_many allocs finish
  else begin
    (* Shape inputs: shapes for data-independent / upper-bound functions,
       values for data-dependent and proven groups (a proven group's
       composed shape function forces only the values its proven members
       actually need). *)
    let mode_str =
      match gclass with
      | Gstatic | Gdynamic Nimble_shape.Shape_func.Data_indep -> "data_indep"
      | Gproven -> "proven"
      | Gdynamic Nimble_shape.Shape_func.Data_dep -> "data_dep"
      | Gdynamic Nimble_shape.Shape_func.Upper_bound -> "upper_bound"
    in
    let with_shape_inputs k =
      match gclass with
      | Gproven | Gdynamic Nimble_shape.Shape_func.Data_dep -> k args
      | Gstatic | Gdynamic _ ->
          let rec go acc = function
            | [] -> k (List.rev acc)
            | arg :: more ->
                let sv = Expr.fresh_var "in_sh" in
                Expr.Let
                  (sv, Expr.op_call "shape_of" [ arg ], go (Expr.Var sv :: acc) more)
          in
          go [] args
    in
    with_shape_inputs (fun shape_inputs ->
        let num_outputs = List.length out_tys in
        let out_ranks =
          List.map
            (fun ty ->
              match ty with
              | Ty.Tensor { dims; _ } -> Array.length dims
              | _ -> 1)
            out_tys
        in
        (* The shape tensors are themselves explicitly allocated — the fixed
           point the paper describes: "we must now manifest allocations ...
           until we allocate for both the compute and necessary shape
           functions". They have static shape [rank] so memory planning can
           coalesce them. *)
        let sh_allocs =
          List.map (fun rank -> alloc_static ~device:0 Dtype.I64 [| rank |]) out_ranks
        in
        alloc_many sh_allocs (fun sh_outs ->
            let unit_v = Expr.fresh_var ~ty:Ty.unit "u" in
            let invoke_sf =
              Expr.op_call
                ~attrs:
                  [
                    ("mode", Attrs.Str mode_str);
                    ("num_inputs", Attrs.Int (List.length shape_inputs));
                    ("num_outputs", Attrs.Int num_outputs);
                    ("out_ranks", Attrs.Ints out_ranks);
                  ]
                "memory.invoke_shape_func"
                ((prim_expr :: shape_inputs) @ sh_outs)
            in
            let allocs =
              List.mapi
                (fun i ty ->
                  let rank = List.nth out_ranks i in
                  alloc_dynamic ~device ~rank ~mode:mode_str ty (List.nth sh_outs i))
                out_tys
            in
            Expr.Let (unit_v, invoke_sf, alloc_many allocs finish)))
  end

let rec rewrite ~device (e : Expr.t) : Expr.t =
  match e with
  | Expr.Let (v, Expr.Call { callee = Expr.Fn prim; args; _ }, rest)
    when Fusion.is_primitive prim ->
      rewrite_call ~device v prim (Expr.Fn prim) args (rewrite ~device rest)
  | Expr.Let (v, bound, rest) ->
      Expr.Let (v, rewrite_inside ~device bound, rewrite ~device rest)
  | Expr.If (c, t, f) -> Expr.If (c, rewrite ~device t, rewrite ~device f)
  | Expr.Match (s, clauses) ->
      Expr.Match
        (s, List.map (fun cl -> { cl with Expr.rhs = rewrite ~device cl.Expr.rhs }) clauses)
  | _ -> e

and rewrite_inside ~device (e : Expr.t) : Expr.t =
  match e with
  | Expr.Fn fn when not (Fusion.is_primitive fn) ->
      Expr.Fn { fn with Expr.body = rewrite ~device fn.Expr.body }
  | Expr.If (c, t, f) -> Expr.If (c, rewrite ~device t, rewrite ~device f)
  | Expr.Match (s, clauses) ->
      Expr.Match
        (s, List.map (fun cl -> { cl with Expr.rhs = rewrite ~device cl.Expr.rhs }) clauses)
  | _ -> e

(** [run ~device m]: rewrite every function. [device] is the id of the
    target device kernels run on (heterogeneous placement may move
    bookkeeping to CPU afterwards; see {!Device_place}). *)
let run ?(device = 0) (m : Irmod.t) : Irmod.t =
  Irmod.map_funcs m (fun _name fn -> { fn with Expr.body = rewrite ~device fn.Expr.body });
  m

(** Count explicit allocations, for tests and the memory experiment. *)
let count_allocs (e : Expr.t) =
  let storage = ref 0 and tensors = ref 0 in
  Expr.iter
    (function
      | Expr.Call { callee = Expr.Op "memory.alloc_storage"; _ } -> incr storage
      | Expr.Call { callee = Expr.Op "memory.alloc_tensor"; _ } -> incr tensors
      | _ -> ())
    e;
  (!storage, !tensors)
