(** Memory planning (paper §4.3, evaluated in §6.3).

    On the manifest-alloc IR: coalesces static storage allocations into one
    liveness-packed arena per device per straight-line region (first-fit
    offset assignment over alias-aware lifetime intervals, so storage is
    reused across tensors whose lifetimes do not overlap), and inserts
    [memory.kill] after the last use of dynamically-allocated tensors. *)

open Nimble_ir

type stats = {
  mutable storages_before : int;  (** static storages found *)
  mutable storages_after : int;  (** arenas emitted *)
  mutable arena_bytes : int;  (** total coalesced arena size *)
  mutable sum_bytes : int;  (** what the un-coalesced storages added up to *)
  mutable kills_inserted : int;
}

val fresh_stats : unit -> stats

(** Aligned byte size of a storage holding [shape] elements of the
    [dtype]/[alignment] named in [attrs] (defaults: f32, 64) — the sizing
    rule both the planner and the memory lint use. *)
val storage_size_bytes : attrs:Attrs.t -> int array -> int

(** Plan one expression (exposed for tests); branches are planned
    recursively as separate regions. *)
val plan_expr : stats -> Expr.t -> Expr.t

(** Run the planner over every function; returns module-wide statistics. *)
val run : Irmod.t -> stats
