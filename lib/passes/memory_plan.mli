(** Memory planning (paper §4.3, evaluated in §6.3).

    On the manifest-alloc IR: coalesces static storage allocations into one
    liveness-packed arena per device per straight-line region (first-fit
    offset assignment over alias-aware lifetime intervals, so storage is
    reused across tensors whose lifetimes do not overlap), folds bindable
    dynamic allocations into a symbolic per-device plan carried by a
    [memory.bind_arena] op (offsets/sizes as {!Nimble_shape.Sym_expr}
    expressions over the function's symbolic dims, BladeDISC++-style), and
    inserts [memory.kill] after the last use of tensors that stay
    dynamically allocated. See [docs/MEMORY.md] for the dialect handbook. *)

open Nimble_ir

type stats = {
  mutable storages_before : int;  (** storages found (static + plannable dynamic) *)
  mutable storages_after : int;  (** arenas emitted *)
  mutable arena_bytes : int;  (** total coalesced arena size *)
  mutable sum_bytes : int;  (** what the un-coalesced storages added up to *)
  mutable kills_inserted : int;
  mutable symbolic_slots : int;  (** dynamic sites folded into a symbolic plan *)
}

(** A zeroed {!stats} record — the planner's accumulator, also what the
    compile report carries when planning is disabled. *)
val fresh_stats : unit -> stats

(** Aligned byte size of a storage holding [shape] elements of the
    [dtype]/[alignment] named in [attrs] (defaults: f32, 64) — the sizing
    rule both the planner and the memory lint use. *)
val storage_size_bytes : attrs:Attrs.t -> int array -> int

(** Symbolic binders of a function: maps each parameter-level [Dim.Sym] id
    to the (parameter index, dim index) the VM reads it from at runtime
    (first occurrence wins). Exposed for tests. *)
val binders_of_params : Expr.var list -> (int * (int * int)) list

(** Plan one expression (exposed for tests); [binders] enables the
    symbolic phase for this region (pass [[]] for static-only planning);
    branches are planned recursively as separate static regions. *)
val plan_expr : stats -> binders:(int * (int * int)) list -> Expr.t -> Expr.t

(** Run the planner over every function; returns module-wide statistics.
    [symbolic] (default on) enables the symbolic phase, with binders drawn
    from each function's parameter types. *)
val run : ?symbolic:bool -> Irmod.t -> stats
