(** Memory planning (paper §4.3, evaluated in §6.3).

    On the manifest-alloc IR this pass:

    1. {b coalesces} static storage allocations: all [memory.alloc_storage]
       calls with compile-time sizes in a straight-line region are replaced
       by one arena allocation per device, and each tensor is given an
       offset into the arena. Offsets are assigned first-fit using liveness
       intervals, so storage is *reused* across tensors whose lifetimes do
       not overlap — this is what cuts both allocation count and footprint;
    2. {b symbolically plans} dynamic allocations whose output dims are
       expressions over the function's symbolic parameter dims
       (BladeDISC++-style): each such site becomes a slot in the device
       arena whose offset/size are {!Nimble_shape.Sym_expr} expressions,
       and the per-device arena allocation becomes a [memory.bind_arena]
       op carrying the whole plan — evaluated once per request by the VM
       against the dims bound from the actual argument shapes. Sites whose
       shape function is data-dependent (or whose dims cannot be bound
       from the parameters) keep the per-site allocation — the upper-bound
       fallback path;
    3. inserts [memory.kill] after the last use of dynamically-allocated
       tensors so the VM can release them before frame exit.

    Symbolic planning applies to each function's top-level region only;
    conditional branches are planned recursively as separate static
    regions (conservative but sound). See [docs/MEMORY.md]. *)

open Nimble_tensor
open Nimble_ir
module Sym_expr = Nimble_shape.Sym_expr

type stats = {
  mutable storages_before : int;
  mutable storages_after : int;
  mutable arena_bytes : int;  (** total coalesced arena size *)
  mutable sum_bytes : int;  (** what the un-coalesced storages added up to *)
  mutable kills_inserted : int;
  mutable symbolic_slots : int;  (** dynamic sites folded into a symbolic plan *)
}

let fresh_stats () =
  {
    storages_before = 0;
    storages_after = 0;
    arena_bytes = 0;
    sum_bytes = 0;
    kills_inserted = 0;
    symbolic_slots = 0;
  }

(* A straight-line let chain: bindings plus terminal expression. *)
let rec chain_of (e : Expr.t) =
  match e with
  | Expr.Let (v, bound, body) ->
      let bs, term = chain_of body in
      ((v, bound) :: bs, term)
  | _ -> ([], e)

let rec rebuild bindings term =
  match bindings with
  | [] -> term
  | (v, bound) :: rest -> Expr.Let (v, bound, rebuild rest term)

let align_up n a = (n + a - 1) / a * a

type static_alloc = {
  storage_var : int;  (** vid of the storage binding *)
  tensor_var : int;  (** vid of the tensor allocated from it *)
  alloc_index : int;  (** binding index of the storage alloc *)
  mutable last_use : int;  (** binding index of the tensor's last use *)
  size : int;  (** aligned bytes *)
  device : int;
  mutable offset : int;
}

(* A dynamic allocation site folded into the symbolic plan: its size is an
   expression over the function's bindable symbolic dims. *)
type dyn_site = {
  d_storage_var : int;
  d_tensor_var : int;
  d_alloc_index : int;
  mutable d_last_use : int;
  d_size : Sym_expr.t;  (** aligned bytes, symbolic *)
  d_device : int;
  mutable d_slot : int;  (** arena slot index, assigned during layout *)
}

(* [Some e] when every dim is static or a symbolic dim bindable from the
   function's parameters ([binders] maps sym id -> (param, dim index)). *)
let size_expr_of_ty binders ~alignment (ty : Ty.t) : Sym_expr.t option =
  match ty with
  | Ty.Tensor { dims; dtype } ->
      let rec go acc i =
        if i = Array.length dims then Some acc
        else
          match dims.(i) with
          | Dim.Static d -> go (Sym_expr.mul acc (Sym_expr.const d)) (i + 1)
          | Dim.Sym s when List.mem_assoc s binders ->
              go (Sym_expr.mul acc (Sym_expr.dim s)) (i + 1)
          | _ -> None
      in
      Option.map
        (fun e ->
          Sym_expr.align
            (Sym_expr.mul e (Sym_expr.const (Dtype.size_in_bytes dtype)))
            alignment)
        (go (Sym_expr.const 1) 0)
  | _ -> None

let uses_var = Expr.uses_var

module Int_set = Set.Make (Int)

let uses_any vids e =
  let found = ref false in
  Expr.iter
    (function Expr.Var v when Int_set.mem v.Expr.vid vids -> found := true | _ -> ())
    e;
  !found

(* A binding whose RHS can carry a reference to a tensor onward (aliases,
   tuples, ADT construction, control-flow results). Kernel calls only read
   their arguments; copies produce fresh tensors. *)
let rhs_may_alias = function
  | Expr.Var _ | Expr.Tuple _ | Expr.Proj _ | Expr.If _ | Expr.Match _ -> true
  | Expr.Call { callee = Expr.Ctor _; _ } -> true
  | Expr.Call { callee = Expr.Global _; _ } | Expr.Call { callee = Expr.Fn _; _ } -> true
  | _ -> false

(* Liveness of a tensor must follow every alias: the set of vids through
   which its buffer remains reachable. *)
let alias_closure (barr : (Expr.var * Expr.t) array) start_vid =
  let set = ref (Int_set.singleton start_vid) in
  Array.iter
    (fun ((v : Expr.var), bound) ->
      if rhs_may_alias bound && uses_any !set bound then set := Int_set.add v.Expr.vid !set)
    barr;
  !set

(* First-fit offset assignment over liveness intervals. *)
let assign_offsets allocs =
  let placed : static_alloc list ref = ref [] in
  List.iter
    (fun a ->
      let overlaps b =
        (* lifetimes intersect *)
        a.alloc_index <= b.last_use && b.alloc_index <= a.last_use
      in
      let conflicts = List.filter overlaps !placed in
      let sorted =
        List.sort (fun x y -> compare x.offset y.offset) conflicts
      in
      let off = ref 0 in
      List.iter
        (fun c ->
          if c.offset < !off + a.size && !off < c.offset + c.size then
            off := c.offset + c.size)
        sorted;
      a.offset <- !off;
      placed := a :: !placed)
    allocs;
  List.fold_left (fun acc a -> Stdlib.max acc (a.offset + a.size)) 0 allocs

let storage_size_bytes ~attrs (shape : int array) =
  let dt =
    match Attrs.find_str attrs "dtype" with
    | Some s -> Option.value ~default:Dtype.F32 (Dtype.of_string s)
    | None -> Dtype.F32
  in
  let align = Attrs.get_int ~default:64 attrs "alignment" in
  align_up (Array.fold_left ( * ) 1 shape * Dtype.size_in_bytes dt) align

(* ------------------------------------------------------------------ *)

let rec plan_expr stats ~binders (e : Expr.t) : Expr.t =
  let bindings, term = chain_of e in
  let bindings =
    (* recurse into nested regions first; branch sub-regions are planned
       as separate static regions (no symbolic binders) *)
    List.map
      (fun (v, bound) ->
        let bound =
          match bound with
          | Expr.If (c, t, f) ->
              Expr.If (c, plan_expr stats ~binders:[] t, plan_expr stats ~binders:[] f)
          | Expr.Match (s, clauses) ->
              Expr.Match
                ( s,
                  List.map
                    (fun cl -> { cl with Expr.rhs = plan_expr stats ~binders:[] cl.Expr.rhs })
                    clauses )
          | Expr.Fn fn when not (Fusion.is_primitive fn) ->
              Expr.Fn { fn with Expr.body = plan_expr stats ~binders:[] fn.Expr.body }
          | _ -> bound
        in
        (v, bound))
      bindings
  in
  let barr = Array.of_list bindings in
  let n = Array.length barr in
  (* -------- collect static storage allocs in this region ------------ *)
  let allocs = ref [] in
  Array.iteri
    (fun i ((v : Expr.var), bound) ->
      match bound with
      | Expr.Call
          { callee = Expr.Op "memory.alloc_storage"; args = [ Expr.Const shape_t ]; attrs }
        -> (
          stats.storages_before <- stats.storages_before + 1;
          let shape = Tensor.to_shape shape_t in
          let size = storage_size_bytes ~attrs shape in
          let device = Attrs.get_int ~default:0 attrs "device" in
          (* find the tensor allocated from this storage, in this region *)
          let tensor_var = ref None in
          Array.iteri
            (fun j ((tv : Expr.var), tb) ->
              if j > i then
                match tb with
                | Expr.Call { callee = Expr.Op "memory.alloc_tensor"; args = Expr.Var sv :: _; _ }
                  when sv.Expr.vid = v.Expr.vid ->
                    tensor_var := Some tv.Expr.vid
                | _ -> ())
            barr;
          match !tensor_var with
          | None -> ()
          | Some tv ->
              allocs :=
                {
                  storage_var = v.Expr.vid;
                  tensor_var = tv;
                  alloc_index = i;
                  last_use = i;
                  size;
                  device;
                  offset = 0;
                }
                :: !allocs)
      | _ -> ())
    barr;
  let allocs = List.rev !allocs in
  (* -------- liveness (alias-aware) ----------------------------------- *)
  List.iter
    (fun a ->
      let aliases = alias_closure barr a.tensor_var in
      Array.iteri
        (fun j (_, bound) ->
          if uses_any aliases bound then a.last_use <- Stdlib.max a.last_use j)
        barr;
      if uses_any aliases term then a.last_use <- n (* escapes: live to end *))
    allocs;
  (* -------- symbolic dynamic sites ----------------------------------- *)
  (* A plannable site is [storage = memory.alloc_storage(%sh)] followed by
     [out = memory.alloc_tensor(storage, %sh)] whose shape function is
     data-independent and whose output dims are all static or bindable
     symbolic dims. Everything else (data-dependent, upper-bound, unbound
     dims) keeps the per-site allocation: the upper-bound fallback. *)
  let dyn_sites = ref [] in
  if binders <> [] then
    Array.iteri
      (fun i ((v : Expr.var), bound) ->
        match bound with
        | Expr.Call
            { callee = Expr.Op "memory.alloc_storage"; args = [ Expr.Var _ ]; attrs }
          when not (Attrs.get_bool attrs "arena") -> (
            let device = Attrs.get_int ~default:0 attrs "device" in
            let alignment = Attrs.get_int ~default:64 attrs "alignment" in
            let tensor = ref None in
            Array.iteri
              (fun j ((tv : Expr.var), tb) ->
                if j > i then
                  match tb with
                  | Expr.Call
                      {
                        callee = Expr.Op "memory.alloc_tensor";
                        args = Expr.Var sv :: _;
                        attrs = tattrs;
                      }
                    when sv.Expr.vid = v.Expr.vid ->
                      tensor := Some (tv, tattrs)
                  | _ -> ())
              barr;
            match !tensor with
            | Some (tv, tattrs)
              when (match Attrs.find_str tattrs "mode" with
                   (* proven sites have dominance-refined [Sym] dims, so
                      their size is a plannable symbolic expression too *)
                   | Some "data_indep" | Some "proven" -> true
                   | _ -> false) -> (
                match
                  Option.bind tv.Expr.vty (size_expr_of_ty binders ~alignment)
                with
                | Some size when Sym_expr.monotone size ->
                    stats.storages_before <- stats.storages_before + 1;
                    dyn_sites :=
                      {
                        d_storage_var = v.Expr.vid;
                        d_tensor_var = tv.Expr.vid;
                        d_alloc_index = i;
                        d_last_use = i;
                        d_size = size;
                        d_device = device;
                        d_slot = -1;
                      }
                      :: !dyn_sites
                | _ -> ())
            | _ -> ())
        | _ -> ())
      barr;
  let dyn_sites = List.rev !dyn_sites in
  List.iter
    (fun d ->
      let aliases = alias_closure barr d.d_tensor_var in
      Array.iteri
        (fun j (_, bound) ->
          if uses_any aliases bound then d.d_last_use <- Stdlib.max d.d_last_use j)
        barr;
      if uses_any aliases term then d.d_last_use <- n)
    dyn_sites;
  (* -------- coalesce per device ------------------------------------- *)
  let devices =
    List.sort_uniq compare
      (List.map (fun a -> a.device) allocs
      @ List.map (fun d -> d.d_device) dyn_sites)
  in
  let arena_vars = Hashtbl.create 4 in
  let arena_lets = ref [] in
  List.iter
    (fun dev ->
      let dev_allocs = List.filter (fun a -> a.device = dev) allocs in
      let dev_dyn = List.filter (fun d -> d.d_device = dev) dyn_sites in
      if dev_allocs <> [] || dev_dyn <> [] then begin
        let total = assign_offsets dev_allocs in
        stats.arena_bytes <- stats.arena_bytes + total;
        stats.sum_bytes <-
          stats.sum_bytes + List.fold_left (fun acc a -> acc + a.size) 0 dev_allocs;
        stats.storages_after <- stats.storages_after + 1;
        let arena_v = Expr.fresh_var ~ty:Ty.Storage "arena" in
        Hashtbl.replace arena_vars dev arena_v;
        let alloc =
          if dev_dyn = [] then
            (* static-only device: a plain constant-size arena *)
            Expr.op_call
              ~attrs:
                [
                  ("alignment", Attrs.Int 64);
                  ("device", Attrs.Int dev);
                  ("dtype", Attrs.Str "uint8");
                  ("arena", Attrs.Bool true);
                ]
              "memory.alloc_storage"
              [ Expr.Const (Tensor.of_int_array ~dtype:Dtype.I64 [| 1 |] [| total |]) ]
          else begin
            (* Symbolic slot layout after the static prefix [0, total):
               sites with equal size expressions and disjoint lifetimes
               share a slot; every fresh slot extends the running total.
               Offsets stay 64-aligned because every size is. *)
            let slots = ref [] in
            (* reversed (offset, size, intervals ref) *)
            let running = ref (Sym_expr.const total) in
            let disjoint (a1, l1) (a2, l2) = l1 < a2 || l2 < a1 in
            List.iter
              (fun d ->
                let interval = (d.d_alloc_index, d.d_last_use) in
                let rec find idx = function
                  | [] -> None
                  | (_, size, ivals) :: rest ->
                      if
                        Sym_expr.equal size d.d_size
                        && List.for_all (disjoint interval) !ivals
                      then Some (idx, ivals)
                      else find (idx + 1) rest
                in
                match find 0 (List.rev !slots) with
                | Some (idx, ivals) ->
                    d.d_slot <- idx;
                    ivals := interval :: !ivals
                | None ->
                    d.d_slot <- List.length !slots;
                    slots := (!running, d.d_size, ref [ interval ]) :: !slots;
                    running := Sym_expr.add !running d.d_size)
              dev_dyn;
            stats.symbolic_slots <- stats.symbolic_slots + List.length dev_dyn;
            let slot_list = List.rev !slots in
            let syms =
              List.sort_uniq compare
                (List.concat_map
                   (fun (o, s, _) -> Sym_expr.free_dims o @ Sym_expr.free_dims s)
                   slot_list
                @ Sym_expr.free_dims !running)
            in
            let binder_ints =
              List.concat_map
                (fun s ->
                  let arg, dim = List.assoc s binders in
                  [ arg; dim; s ])
                syms
            in
            let slots_str =
              String.concat ";"
                (List.map
                   (fun (o, s, _) ->
                     Sym_expr.to_string o ^ "|" ^ Sym_expr.to_string s)
                   slot_list)
            in
            Expr.op_call
              ~attrs:
                [
                  ("alignment", Attrs.Int 64);
                  ("device", Attrs.Int dev);
                  ("dtype", Attrs.Str "uint8");
                  ("arena", Attrs.Bool true);
                  ("binders", Attrs.Ints binder_ints);
                  ("slots", Attrs.Str slots_str);
                  ("total", Attrs.Str (Sym_expr.to_string !running));
                ]
              "memory.bind_arena" []
          end
        in
        arena_lets := (arena_v, alloc) :: !arena_lets
      end)
    devices;
  let by_storage_var =
    List.fold_left (fun acc a -> (a.storage_var, a) :: acc) [] allocs
  in
  let by_dyn_storage =
    List.fold_left (fun acc d -> (d.d_storage_var, d) :: acc) [] dyn_sites
  in
  (* -------- rewrite bindings ---------------------------------------- *)
  let rewritten =
    Array.to_list barr
    |> List.filter_map (fun ((v : Expr.var), bound) ->
           match bound with
           | Expr.Call { callee = Expr.Op "memory.alloc_storage"; _ }
             when List.mem_assoc v.Expr.vid by_storage_var
                  || List.mem_assoc v.Expr.vid by_dyn_storage ->
               None (* replaced by the arena *)
           | Expr.Call
               { callee = Expr.Op "memory.alloc_tensor"; args = Expr.Var sv :: more; attrs }
             when List.mem_assoc sv.Expr.vid by_storage_var ->
               let a = List.assoc sv.Expr.vid by_storage_var in
               let arena_v = Hashtbl.find arena_vars a.device in
               let attrs = Attrs.set attrs "offset" (Attrs.Int a.offset) in
               Some
                 ( v,
                   Expr.Call
                     {
                       callee = Expr.Op "memory.alloc_tensor";
                       args = Expr.Var arena_v :: more;
                       attrs;
                     } )
           | Expr.Call
               { callee = Expr.Op "memory.alloc_tensor"; args = Expr.Var sv :: more; attrs }
             when List.mem_assoc sv.Expr.vid by_dyn_storage ->
               (* a symbolic slot: the VM resolves the offset from the plan
                  bound by the enclosing [memory.bind_arena] *)
               let d = List.assoc sv.Expr.vid by_dyn_storage in
               let arena_v = Hashtbl.find arena_vars d.d_device in
               let attrs = Attrs.set attrs "plan_slot" (Attrs.Int d.d_slot) in
               Some
                 ( v,
                   Expr.Call
                     {
                       callee = Expr.Op "memory.alloc_tensor";
                       args = Expr.Var arena_v :: more;
                       attrs;
                     } )
           | _ -> Some (v, bound))
  in
  (* -------- kill insertion for dynamic tensors ----------------------- *)
  let coalesced_tensor_vids =
    List.map (fun a -> a.tensor_var) allocs
    @ List.map (fun d -> d.d_tensor_var) dyn_sites
  in
  let dynamic_tensors = ref [] in
  Array.iteri
    (fun i ((v : Expr.var), bound) ->
      match bound with
      | Expr.Call { callee = Expr.Op "memory.alloc_tensor"; _ }
        when not (List.mem v.Expr.vid coalesced_tensor_vids) ->
          let last = ref i in
          Array.iteri
            (fun j (_, b) -> if j > i && uses_var v.Expr.vid b then last := j)
            barr;
          if not (uses_var v.Expr.vid term) then dynamic_tensors := (v, !last) :: !dynamic_tensors
      | _ -> ())
    barr;
  (* map: original index -> kills to insert after it *)
  let kills_at = Hashtbl.create 8 in
  List.iter
    (fun ((v : Expr.var), last) ->
      stats.kills_inserted <- stats.kills_inserted + 1;
      Hashtbl.replace kills_at last (v :: Option.value ~default:[] (Hashtbl.find_opt kills_at last)))
    !dynamic_tensors;
  (* Rebuild, tracking the original index of each surviving binding. *)
  let with_kills =
    List.concat_map
      (fun ((v : Expr.var), bound) ->
        (* recover original index by matching vids *)
        let orig_index = ref (-1) in
        Array.iteri (fun j ((bv : Expr.var), _) -> if bv.Expr.vid = v.Expr.vid then orig_index := j) barr;
        let kills =
          match Hashtbl.find_opt kills_at !orig_index with
          | Some vs ->
              List.map
                (fun (kv : Expr.var) ->
                  ( Expr.fresh_var ~ty:Ty.unit "k",
                    Expr.op_call "memory.kill" [ Expr.Var kv ] ))
                vs
          | None -> []
        in
        ((v, bound) :: kills))
      rewritten
  in
  rebuild (List.rev !arena_lets @ with_kills) term

(** Symbolic binders of a function: maps each parameter-level [Dim.Sym] id
    to the (parameter index, dim index) the VM reads it from at runtime
    (first occurrence wins). *)
let binders_of_params (params : Expr.var list) : (int * (int * int)) list =
  let bs = ref [] in
  List.iteri
    (fun pi (p : Expr.var) ->
      match p.Expr.vty with
      | Some (Ty.Tensor { dims; _ }) ->
          Array.iteri
            (fun di dim ->
              match dim with
              | Dim.Sym s when not (List.mem_assoc s !bs) -> bs := (s, (pi, di)) :: !bs
              | _ -> ())
            dims
      | _ -> ())
    params;
  List.rev !bs

(** Run the planner; returns per-module statistics. [symbolic] (default on)
    enables the symbolic phase that folds bindable dynamic allocations into
    a per-device [memory.bind_arena] plan; with it off, only static
    coalescing and kill insertion run (the pre-symbolic behaviour). *)
let run ?(symbolic = true) (m : Irmod.t) : stats =
  let stats = fresh_stats () in
  Irmod.map_funcs m (fun _name fn ->
      let binders = if symbolic then binders_of_params fn.Expr.params else [] in
      { fn with Expr.body = plan_expr stats ~binders fn.Expr.body });
  stats
