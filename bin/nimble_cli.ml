(** nimble_cli — compile, inspect and run models from the built-in zoo.

    {[
      nimble_cli compile bert -o bert.nimble   # compile + serialize
      nimble_cli disasm bert.nimble            # print bytecode
      nimble_cli run bert --seq 24             # compile, run, profile
      nimble_cli models                        # list the zoo
    ]} *)

open Cmdliner
open Nimble_tensor
open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp

(* ------------------------- model zoo ------------------------- *)

type zoo_entry = {
  description : string;
  build : unit -> Nimble_ir.Irmod.t;
  sample_input : seq:int -> Nimble_vm.Obj.t;
}

let lstm_entry () =
  let w = Lstm.init_weights Lstm.small_config in
  {
    description = "LSTM (dynamic control flow over a TensorList)";
    build = (fun () -> Lstm.ir_module w);
    sample_input =
      (fun ~seq ->
        let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
        let adt = Nimble_ir.Adt.tensor_list ~elem_ty in
        let nil = Nimble_ir.Adt.ctor_exn adt "Nil" in
        let cons = Nimble_ir.Adt.ctor_exn adt "Cons" in
        List.fold_right
          (fun x acc ->
            Nimble_vm.Obj.Adt
              { tag = cons.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x; acc |] })
          (Lstm.random_sequence w.Lstm.config ~len:seq)
          (Nimble_vm.Obj.Adt { tag = nil.Nimble_ir.Adt.tag; fields = [||] }));
  }

let treelstm_entry () =
  let w = Tree_lstm.init_weights Tree_lstm.small_config in
  let leaf, node = Tree_lstm.ctors w in
  let rec obj = function
    | Tree_lstm.Leaf x ->
        Nimble_vm.Obj.Adt
          { tag = leaf.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x |] }
    | Tree_lstm.Node (l, r) ->
        Nimble_vm.Obj.Adt { tag = node.Nimble_ir.Adt.tag; fields = [| obj l; obj r |] }
  in
  {
    description = "Tree-LSTM (dynamic data structure, SST-like trees)";
    build = (fun () -> Tree_lstm.ir_module w);
    sample_input =
      (fun ~seq ->
        let rng = Rng.create ~seed:1 in
        obj (Nimble_workloads.Sst.sample_tree rng w.Tree_lstm.config ~tokens:(max 1 seq)));
  }

let bert_entry () =
  let w = Bert.init_weights Bert.small_config in
  {
    description = "BERT encoder (dynamic sequence length)";
    build = (fun () -> Bert.ir_module w);
    sample_input =
      (fun ~seq -> Nimble_vm.Obj.tensor (Bert.embed w (Bert.random_ids w ~len:seq)));
  }

let vision_entry name build =
  {
    description = Fmt.str "%s (static vision graph)" name;
    build;
    sample_input = (fun ~seq:_ -> Nimble_vm.Obj.tensor (Vision.random_input ()));
  }

let gru_entry () =
  let w = Gru.init_weights Gru.small_config in
  {
    description = "GRU (dynamic control flow over a TensorList)";
    build = (fun () -> Gru.ir_module w);
    sample_input =
      (fun ~seq ->
        let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
        let adt = Nimble_ir.Adt.tensor_list ~elem_ty in
        let nil = Nimble_ir.Adt.ctor_exn adt "Nil" in
        let cons = Nimble_ir.Adt.ctor_exn adt "Cons" in
        List.fold_right
          (fun x acc ->
            Nimble_vm.Obj.Adt
              { tag = cons.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x; acc |] })
          (Gru.random_sequence w.Gru.config ~len:seq)
          (Nimble_vm.Obj.Adt { tag = nil.Nimble_ir.Adt.tag; fields = [||] }));
  }

let decoder_entry () =
  let w = Decoder.init_weights Decoder.default_config in
  {
    description = "greedy decoder (output tensor grows per step)";
    build = (fun () -> Decoder.ir_module w);
    sample_input =
      (fun ~seq -> Nimble_vm.Obj.tensor (Decoder.random_state ~seed:seq w.Decoder.config));
  }

let seq2seq_entry () =
  let w = Seq2seq.init_weights Seq2seq.default_config in
  {
    description = "seq2seq (dynamic input length -> dynamic output length)";
    build = (fun () -> Seq2seq.ir_module w);
    sample_input =
      (fun ~seq ->
        let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
        let adt = Nimble_ir.Adt.tensor_list ~elem_ty in
        let nil = Nimble_ir.Adt.ctor_exn adt "Nil" in
        let cons = Nimble_ir.Adt.ctor_exn adt "Cons" in
        List.fold_right
          (fun x acc ->
            Nimble_vm.Obj.Adt
              { tag = cons.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x; acc |] })
          (Seq2seq.random_sequence w.Seq2seq.config ~len:seq)
          (Nimble_vm.Obj.Adt { tag = nil.Nimble_ir.Adt.tag; fields = [||] }));
  }

let zoo () : (string * zoo_entry) list =
  [
    ("lstm", lstm_entry ());
    ("gru", gru_entry ());
    ("treelstm", treelstm_entry ());
    ("bert", bert_entry ());
    ("decoder", decoder_entry ());
    ("seq2seq", seq2seq_entry ());
  ]
  @ List.map (fun (n, b) -> (n, vision_entry n b)) Vision.all

let lookup name =
  match List.assoc_opt name (zoo ()) with
  | Some e -> e
  | None ->
      Fmt.epr "unknown model %s; try: %s@." name
        (String.concat ", " (List.map fst (zoo ())));
      exit 1

(* ------------------------- commands ------------------------- *)

let model_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc:"Model from the zoo")

let models_cmd =
  let run () =
    List.iter (fun (n, e) -> Fmt.pr "%-12s %s@." n e.description) (zoo ())
  in
  Cmd.v (Cmd.info "models" ~doc:"List the built-in model zoo") Term.(const run $ const ())

let compile_cmd =
  let output =
    Arg.(value & opt string "model.nimble" & info [ "o"; "output" ] ~doc:"Output path")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the compile report ($(i,nimble-compile/v1) JSON) to $(docv)")
  in
  let run model output report_out =
    let entry = lookup model in
    let exe, report = Nimble.compile_with_report (entry.build ()) in
    Nimble_vm.Serialize.save_file exe output;
    Fmt.pr "compiled %s -> %s@." model output;
    Fmt.pr "%a@." Nimble.pp_report report;
    Option.iter
      (fun path ->
        Nimble_vm.Json.save_file (Nimble.report_to_json report) path;
        Fmt.pr "report: %s@." path)
      report_out
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a zoo model to a serialized executable")
    Term.(const run $ model_arg $ output $ report_out)

let disasm_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Executable file")
  in
  let run path =
    let exe = Nimble_vm.Serialize.load_file path in
    Nimble_vm.Exe.disassemble Fmt.stdout exe
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Disassemble a serialized executable") Term.(const run $ path)

let seq_arg =
  Arg.(value & opt int 12 & info [ "seq" ] ~doc:"Sequence length / token count")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain-pool width for multicore kernels (overrides \
           $(b,NIMBLE_NUM_DOMAINS); 1 = fully sequential)")

let apply_domains = Option.iter Nimble_parallel.Parallel.set_num_domains

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a VM execution trace and write it to $(docv) as Chrome \
           $(i,trace_event) JSON (load in Perfetto or chrome://tracing)")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a $(i,nimble-report/v1) JSON (profiler + compile report) to \
           $(docv)")

(** The [nimble-report/v1] document: one CLI run's profiler report plus
    the compile report that produced the executable. *)
let run_report_json ~model ~seq ~(creport : Nimble.report) vm =
  Nimble_vm.Json.Obj
    [
      ("schema", Nimble_vm.Json.String "nimble-report/v1");
      ("model", Nimble_vm.Json.String model);
      ("seq", Nimble_vm.Json.Int seq);
      ("profile", Nimble_vm.Profiler.to_json (Interp.profiler vm));
      ("compile", Nimble.report_to_json creport);
    ]

let save_trace ~model ~seq tr path =
  let meta = [ ("model", model); ("seq", string_of_int seq) ] in
  Nimble_vm.Trace.save_file ~meta tr path;
  Fmt.pr "trace: %s (%d spans, %d dropped)@." path
    (List.length (Nimble_vm.Trace.spans tr))
    (Nimble_vm.Trace.dropped tr)

let save_report ~model ~seq ~creport vm path =
  Nimble_vm.Json.save_file (run_report_json ~model ~seq ~creport vm) path;
  Fmt.pr "report: %s@." path

let run_cmd =
  let run model seq domains trace_out report_out =
    apply_domains domains;
    let entry = lookup model in
    let exe, creport = Nimble.compile_with_report (entry.build ()) in
    let vm = Nimble.vm exe in
    let tr =
      match trace_out with
      | Some _ -> Some (Nimble_vm.Trace.create ())
      | None -> None
    in
    Interp.set_trace vm tr;
    let input = entry.sample_input ~seq in
    let t0 = Unix.gettimeofday () in
    let out = Interp.invoke vm [ input ] in
    let ms = 1e3 *. (Unix.gettimeofday () -. t0) in
    (match out with
    | Nimble_vm.Obj.Tensor p ->
        Fmt.pr "output: %a (%.2f ms)@." Shape.pp (Tensor.shape p.Nimble_vm.Obj.data) ms
    | o -> Fmt.pr "output: %a (%.2f ms)@." Nimble_vm.Obj.pp o ms);
    Fmt.pr "@.profile:@.%a" Nimble_vm.Profiler.pp (Interp.profiler vm);
    (match (tr, trace_out) with
    | Some tr, Some path -> save_trace ~model ~seq tr path
    | _ -> ());
    Option.iter (save_report ~model ~seq ~creport vm) report_out
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and run a zoo model with profiling")
    Term.(const run $ model_arg $ seq_arg $ domains_arg $ trace_arg $ report_arg)

let profile_cmd =
  let runs =
    Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Number of measured invocations")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the $(i,nimble-report/v1) JSON to stdout instead of tables")
  in
  let run model seq domains runs json trace_out report_out =
    apply_domains domains;
    let entry = lookup model in
    let exe, creport = Nimble.compile_with_report (entry.build ()) in
    let vm = Nimble.vm exe in
    let tr =
      match trace_out with
      | Some _ -> Some (Nimble_vm.Trace.create ())
      | None -> None
    in
    Interp.set_trace vm tr;
    let input = entry.sample_input ~seq in
    let runs = max 1 runs in
    for _ = 1 to runs do
      ignore (Interp.invoke vm [ input ])
    done;
    if json then
      print_string
        (Nimble_vm.Json.to_string_pretty (run_report_json ~model ~seq ~creport vm))
    else begin
      Fmt.pr "== compile (%s) ==@.%a@.@.%a@." model Nimble.pp_report creport
        Nimble.pp_passes creport;
      Fmt.pr "== runtime (seq=%d, %d run%s) ==@.%a" seq runs
        (if runs = 1 then "" else "s")
        Nimble_vm.Profiler.pp (Interp.profiler vm)
    end;
    (match (tr, trace_out) with
    | Some tr, Some path -> save_trace ~model ~seq tr path
    | _ -> ());
    Option.iter (save_report ~model ~seq ~creport vm) report_out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile and run a zoo model, then print per-pass compile stats and \
          the runtime profile (or the JSON report with $(b,--json))")
    Term.(const run $ model_arg $ seq_arg $ domains_arg $ runs $ json $ trace_arg $ report_arg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Textual IR file")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Serialize executable here")
  in
  let run path output =
    let m = Nimble_ir.Text_format.parse_module (read_file path) in
    let exe, report = Nimble.compile_with_report m in
    Fmt.pr "parsed and compiled %s@.%a@." path Nimble.pp_report report;
    (match Nimble_vm.Exe.validate exe with
    | [] -> Fmt.pr "bytecode validates@."
    | problems -> List.iter (Fmt.pr "VALIDATION: %s@.") problems);
    match output with
    | Some out ->
        Nimble_vm.Serialize.save_file exe out;
        Fmt.pr "saved %s@." out
    | None -> Fmt.pr "%a@." (fun ppf m -> Nimble_ir.Text_format.print_module ppf m) m
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a textual IR file, compile and validate it")
    Term.(const run $ path $ output)

let () =
  let doc = "Nimble: compile and execute dynamic neural networks" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "nimble_cli" ~doc)
          [ models_cmd; compile_cmd; disasm_cmd; run_cmd; profile_cmd; parse_cmd ]))
