(** nimble_cli — compile, inspect and run models from the built-in zoo.

    {[
      nimble_cli compile bert -o bert.nimble   # compile + serialize
      nimble_cli disasm bert.nimble            # print bytecode
      nimble_cli run bert --seq 24             # compile, run, profile
      nimble_cli models                        # list the zoo
    ]} *)

open Cmdliner
open Nimble_tensor
open Nimble_models
module Nimble = Nimble_compiler.Nimble
module Interp = Nimble_vm.Interp
module Serve = Nimble_serve
module Fault = Nimble_fault.Fault

(** Exit with a one-line diagnostic (no backtrace): the polite way to
    refuse a malformed knob value. *)
let die fmt = Fmt.kstr (fun msg -> Fmt.epr "nimble_cli: %s@." msg; exit 1) fmt

(* ------------------------- model zoo ------------------------- *)

type zoo_entry = {
  description : string;
  build : unit -> Nimble_ir.Irmod.t;
  sample_input : seq:int -> Nimble_vm.Obj.t;
}

let lstm_entry () =
  let w = Lstm.init_weights Lstm.small_config in
  {
    description = "LSTM (dynamic control flow over a TensorList)";
    build = (fun () -> Lstm.ir_module w);
    sample_input =
      (fun ~seq ->
        let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
        let adt = Nimble_ir.Adt.tensor_list ~elem_ty in
        let nil = Nimble_ir.Adt.ctor_exn adt "Nil" in
        let cons = Nimble_ir.Adt.ctor_exn adt "Cons" in
        List.fold_right
          (fun x acc ->
            Nimble_vm.Obj.Adt
              { tag = cons.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x; acc |] })
          (Lstm.random_sequence w.Lstm.config ~len:seq)
          (Nimble_vm.Obj.Adt { tag = nil.Nimble_ir.Adt.tag; fields = [||] }));
  }

let treelstm_entry () =
  let w = Tree_lstm.init_weights Tree_lstm.small_config in
  let leaf, node = Tree_lstm.ctors w in
  let rec obj = function
    | Tree_lstm.Leaf x ->
        Nimble_vm.Obj.Adt
          { tag = leaf.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x |] }
    | Tree_lstm.Node (l, r) ->
        Nimble_vm.Obj.Adt { tag = node.Nimble_ir.Adt.tag; fields = [| obj l; obj r |] }
  in
  {
    description = "Tree-LSTM (dynamic data structure, SST-like trees)";
    build = (fun () -> Tree_lstm.ir_module w);
    sample_input =
      (fun ~seq ->
        let rng = Rng.create ~seed:1 in
        obj (Nimble_workloads.Sst.sample_tree rng w.Tree_lstm.config ~tokens:(max 1 seq)));
  }

let bert_entry () =
  let w = Bert.init_weights Bert.small_config in
  {
    description = "BERT encoder (dynamic sequence length)";
    build = (fun () -> Bert.ir_module w);
    sample_input =
      (fun ~seq -> Nimble_vm.Obj.tensor (Bert.embed w (Bert.random_ids w ~len:seq)));
  }

let vision_entry name build =
  {
    description = Fmt.str "%s (static vision graph)" name;
    build;
    sample_input = (fun ~seq:_ -> Nimble_vm.Obj.tensor (Vision.random_input ()));
  }

let gru_entry () =
  let w = Gru.init_weights Gru.small_config in
  {
    description = "GRU (dynamic control flow over a TensorList)";
    build = (fun () -> Gru.ir_module w);
    sample_input =
      (fun ~seq ->
        let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
        let adt = Nimble_ir.Adt.tensor_list ~elem_ty in
        let nil = Nimble_ir.Adt.ctor_exn adt "Nil" in
        let cons = Nimble_ir.Adt.ctor_exn adt "Cons" in
        List.fold_right
          (fun x acc ->
            Nimble_vm.Obj.Adt
              { tag = cons.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x; acc |] })
          (Gru.random_sequence w.Gru.config ~len:seq)
          (Nimble_vm.Obj.Adt { tag = nil.Nimble_ir.Adt.tag; fields = [||] }));
  }

let decoder_entry () =
  let w = Decoder.init_weights Decoder.default_config in
  {
    description = "greedy decoder (output tensor grows per step)";
    build = (fun () -> Decoder.ir_module w);
    sample_input =
      (fun ~seq -> Nimble_vm.Obj.tensor (Decoder.random_state ~seed:seq w.Decoder.config));
  }

let seq2seq_entry () =
  let w = Seq2seq.init_weights Seq2seq.default_config in
  {
    description = "seq2seq (dynamic input length -> dynamic output length)";
    build = (fun () -> Seq2seq.ir_module w);
    sample_input =
      (fun ~seq ->
        let elem_ty = Nimble_ir.Ty.tensor [ Nimble_ir.Dim.static 1; Nimble_ir.Dim.Any ] in
        let adt = Nimble_ir.Adt.tensor_list ~elem_ty in
        let nil = Nimble_ir.Adt.ctor_exn adt "Nil" in
        let cons = Nimble_ir.Adt.ctor_exn adt "Cons" in
        List.fold_right
          (fun x acc ->
            Nimble_vm.Obj.Adt
              { tag = cons.Nimble_ir.Adt.tag; fields = [| Nimble_vm.Obj.tensor x; acc |] })
          (Seq2seq.random_sequence w.Seq2seq.config ~len:seq)
          (Nimble_vm.Obj.Adt { tag = nil.Nimble_ir.Adt.tag; fields = [||] }));
  }

let posenc_entry () =
  let w = Posenc.init_weights Posenc.default_config in
  {
    description =
      "positional-encoding head (data-dependent arange proven static by \
       shape-value dominance)";
    build = (fun () -> Posenc.ir_module w);
    sample_input =
      (fun ~seq -> Nimble_vm.Obj.tensor (Posenc.random_input w ~len:(max 1 seq)));
  }

let zoo () : (string * zoo_entry) list =
  [
    ("lstm", lstm_entry ());
    ("posenc", posenc_entry ());
    ("gru", gru_entry ());
    ("treelstm", treelstm_entry ());
    ("bert", bert_entry ());
    ("decoder", decoder_entry ());
    ("seq2seq", seq2seq_entry ());
  ]
  @ List.map (fun (n, b) -> (n, vision_entry n b)) Vision.all

let lookup name =
  match List.assoc_opt name (zoo ()) with
  | Some e -> e
  | None ->
      Fmt.epr "unknown model %s; try: %s@." name
        (String.concat ", " (List.map fst (zoo ())));
      exit 1

(* ------------------------- commands ------------------------- *)

let model_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"MODEL" ~doc:"Model from the zoo")

let models_cmd =
  let run () =
    List.iter (fun (n, e) -> Fmt.pr "%-12s %s@." n e.description) (zoo ())
  in
  Cmd.v (Cmd.info "models" ~doc:"List the built-in model zoo") Term.(const run $ const ())

let compile_cmd =
  let output =
    Arg.(value & opt string "model.nimble" & info [ "o"; "output" ] ~doc:"Output path")
  in
  let report_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Write the compile report ($(i,nimble-compile/v1) JSON) to $(docv)")
  in
  let run model output report_out =
    let entry = lookup model in
    let exe, report = Nimble.compile_with_report (entry.build ()) in
    Nimble_vm.Serialize.save_file exe output;
    Fmt.pr "compiled %s -> %s@." model output;
    Fmt.pr "%a@." Nimble.pp_report report;
    Option.iter
      (fun path ->
        Nimble_vm.Json.save_file (Nimble.report_to_json report) path;
        Fmt.pr "report: %s@." path)
      report_out
  in
  Cmd.v (Cmd.info "compile" ~doc:"Compile a zoo model to a serialized executable")
    Term.(const run $ model_arg $ output $ report_out)

let disasm_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Executable file")
  in
  let run path =
    let exe =
      match Nimble_analysis.Verifier.load_file path with
      | exe -> exe
      | exception Nimble_analysis.Verifier.Verify_error ds ->
          List.iter (fun d -> Fmt.epr "%a@." Nimble_analysis.Diag.pp d) ds;
          die "%s failed bytecode verification (%d violations)" path (List.length ds)
    in
    Nimble_vm.Exe.disassemble Fmt.stdout exe
  in
  Cmd.v
    (Cmd.info "disasm" ~doc:"Verify and disassemble a serialized executable")
    Term.(const run $ path)

let seq_arg =
  Arg.(value & opt int 12 & info [ "seq" ] ~doc:"Sequence length / token count")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Domain-pool width for multicore kernels (overrides \
           $(b,NIMBLE_NUM_DOMAINS); 1 = fully sequential)")

let apply_domains = Option.iter Nimble_parallel.Parallel.set_num_domains

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record a VM execution trace and write it to $(docv) as Chrome \
           $(i,trace_event) JSON (load in Perfetto or chrome://tracing)")

let report_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "report" ] ~docv:"FILE"
        ~doc:
          "Write a $(i,nimble-report/v1) JSON (profiler + compile report) to \
           $(docv)")

let no_guards_arg =
  Arg.(
    value & flag
    & info [ "no-guards" ]
        ~doc:
          "Compile without entry type guards (the runtime checks that validate \
           each call's tensor arguments against the function's declared types; \
           see docs/ROBUSTNESS.md)")

let no_symbolic_plan_arg =
  Arg.(
    value & flag
    & info [ "no-symbolic-plan" ]
        ~doc:
          "Compile without symbolic memory planning: dynamic allocations stay \
           per-request storage allocs instead of slots in a per-request-bound \
           reusable arena (the legacy behaviour; see docs/MEMORY.md)")

let compile_options ?(autotune = false) ?autotune_threshold ?autotune_interval
    ~no_guards ~no_symbolic_plan () =
  let d = Nimble.default_options in
  {
    d with
    Nimble.runtime_guards = not no_guards;
    Nimble.symbolic_plan = not no_symbolic_plan;
    Nimble.autotune;
    Nimble.autotune_threshold =
      Option.value autotune_threshold ~default:d.Nimble.autotune_threshold;
    Nimble.autotune_interval =
      Option.value autotune_interval ~default:d.Nimble.autotune_interval;
  }

(* ------------------------- autotuning ------------------------- *)

let autotune_flag_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "autotune" ]
              ~doc:
                "Attach the online shape specializer while serving: hot \
                 dispatch extents are re-tuned in the background and the \
                 winners installed into the live dispatch tables (see \
                 docs/TUNING.md)" );
          ( Some false,
            info [ "no-autotune" ]
              ~doc:"Serve without online shape specialization (the default)" );
        ])

let autotune_threshold_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "autotune-threshold" ] ~docv:"N"
        ~doc:
          "Dispatch count at which an extent counts as hot (default from \
           the tuner policy)")

let autotune_interval_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "autotune-interval" ] ~docv:"N"
        ~doc:"Served batches between hotness scans (default from the tuner policy)")

(** Fold the three flags into the compile-options fields, validating the
    knobs. Returns [(enabled, threshold option, interval option)]. *)
let autotune_term =
  let mk flag threshold interval =
    Option.iter
      (fun n -> if n < 1 then die "--autotune-threshold must be >= 1 (got %d)" n)
      threshold;
    Option.iter
      (fun n -> if n < 1 then die "--autotune-interval must be >= 1 (got %d)" n)
      interval;
    (Option.value flag ~default:false, threshold, interval)
  in
  Term.(const mk $ autotune_flag_arg $ autotune_threshold_arg $ autotune_interval_arg)

(** An {!Nimble_codegen.Autotune.t} for serving when the compiled options
    ask for one, with the policy knobs taken from the options record. *)
let make_autotuner (options : Nimble.options) =
  if not options.Nimble.autotune then None
  else
    Some
      (Nimble_codegen.Autotune.create
         ~config:
           {
             Nimble_codegen.Autotune.default_config with
             Nimble_codegen.Autotune.hot_threshold = options.Nimble.autotune_threshold;
             scan_interval = options.Nimble.autotune_interval;
           }
         ())

(** Finish the specializer after the engine drained: wait for in-flight
    tuning, stop the tuning domain, and print a one-line summary. *)
let finish_autotuner ?(quiet = false) au =
  Nimble_codegen.Autotune.drain au;
  Nimble_codegen.Autotune.shutdown au;
  let s = Nimble_codegen.Autotune.summary au in
  if not quiet then
    Fmt.pr "autotune: %d observations, %d scans, %d installs, %d evictions@."
      s.Nimble_codegen.Autotune.au_observations s.Nimble_codegen.Autotune.au_scans
      (List.length s.Nimble_codegen.Autotune.au_installs)
      s.Nimble_codegen.Autotune.au_evictions;
  s

let fault_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "fault" ] ~docv:"SPEC"
        ~doc:
          "Fault-injection spec, e.g. $(b,seed=11;*=0.05) or \
           $(b,kernel_launch=0.5:transient) (overrides $(b,NIMBLE_FAULT_SPEC); \
           grammar in docs/ROBUSTNESS.md)")

let apply_fault =
  Option.iter (fun spec ->
      try Fault.configure spec
      with Fault.Spec_error msg -> die "bad --fault spec: %s" msg)

(** The [nimble-report/v1] document: one CLI run's profiler report plus
    the compile report that produced the executable. *)
let run_report_json ~model ~seq ~(creport : Nimble.report) vm =
  Nimble_vm.Json.Obj
    [
      ("schema", Nimble_vm.Json.String "nimble-report/v1");
      ("model", Nimble_vm.Json.String model);
      ("seq", Nimble_vm.Json.Int seq);
      ("profile", Nimble_vm.Profiler.to_json (Interp.profiler vm));
      ("compile", Nimble.report_to_json creport);
    ]

let save_trace ~model ~seq tr path =
  let meta = [ ("model", model); ("seq", string_of_int seq) ] in
  Nimble_vm.Trace.save_file ~meta tr path;
  Fmt.pr "trace: %s (%d spans, %d dropped)@." path
    (List.length (Nimble_vm.Trace.spans tr))
    (Nimble_vm.Trace.dropped tr)

let save_report ~model ~seq ~creport vm path =
  Nimble_vm.Json.save_file (run_report_json ~model ~seq ~creport vm) path;
  Fmt.pr "report: %s@." path

let run_cmd =
  let run model seq domains no_guards no_symbolic_plan fault trace_out report_out =
    apply_domains domains;
    apply_fault fault;
    let entry = lookup model in
    let exe, creport =
      Nimble.compile_with_report
        ~options:(compile_options ~no_guards ~no_symbolic_plan ())
        (entry.build ())
    in
    let vm = Nimble.vm exe in
    let tr =
      match trace_out with
      | Some _ -> Some (Nimble_vm.Trace.create ())
      | None -> None
    in
    Interp.set_trace vm tr;
    let input = entry.sample_input ~seq in
    let t0 = Unix.gettimeofday () in
    let out =
      match Interp.invoke_result vm [ input ] with
      | Ok out -> out
      | Error fl -> die "execution failed: %a" Interp.pp_failure fl
    in
    let ms = 1e3 *. (Unix.gettimeofday () -. t0) in
    (match out with
    | Nimble_vm.Obj.Tensor p ->
        Fmt.pr "output: %a (%.2f ms)@." Shape.pp (Tensor.shape p.Nimble_vm.Obj.data) ms
    | o -> Fmt.pr "output: %a (%.2f ms)@." Nimble_vm.Obj.pp o ms);
    Fmt.pr "@.profile:@.%a" Nimble_vm.Profiler.pp (Interp.profiler vm);
    (match (tr, trace_out) with
    | Some tr, Some path -> save_trace ~model ~seq tr path
    | _ -> ());
    Option.iter (save_report ~model ~seq ~creport vm) report_out
  in
  Cmd.v (Cmd.info "run" ~doc:"Compile and run a zoo model with profiling")
    Term.(
      const run $ model_arg $ seq_arg $ domains_arg $ no_guards_arg
      $ no_symbolic_plan_arg $ fault_arg $ trace_arg $ report_arg)

let profile_cmd =
  let runs =
    Arg.(value & opt int 1 & info [ "runs" ] ~doc:"Number of measured invocations")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Print the $(i,nimble-report/v1) JSON to stdout instead of tables")
  in
  let run model seq domains runs json no_guards no_symbolic_plan trace_out
      report_out =
    apply_domains domains;
    let entry = lookup model in
    let exe, creport =
      Nimble.compile_with_report
        ~options:(compile_options ~no_guards ~no_symbolic_plan ())
        (entry.build ())
    in
    let vm = Nimble.vm exe in
    let tr =
      match trace_out with
      | Some _ -> Some (Nimble_vm.Trace.create ())
      | None -> None
    in
    Interp.set_trace vm tr;
    let input = entry.sample_input ~seq in
    let runs = max 1 runs in
    (* reuse one execution context across the measured runs, as the
       serving workers do: steady-state cost, not per-call allocation *)
    let ctx = Interp.context () in
    for _ = 1 to runs do
      ignore (Interp.invoke ~ctx vm [ input ])
    done;
    if json then
      print_string
        (Nimble_vm.Json.to_string_pretty (run_report_json ~model ~seq ~creport vm))
    else begin
      Fmt.pr "== compile (%s) ==@.%a@.@.%a@." model Nimble.pp_report creport
        Nimble.pp_passes creport;
      Fmt.pr "== runtime (seq=%d, %d run%s, %d warm frame reuse%s) ==@.%a" seq runs
        (if runs = 1 then "" else "s")
        (Interp.frame_reuses ctx)
        (if Interp.frame_reuses ctx = 1 then "" else "s")
        Nimble_vm.Profiler.pp (Interp.profiler vm)
    end;
    (match (tr, trace_out) with
    | Some tr, Some path -> save_trace ~model ~seq tr path
    | _ -> ());
    Option.iter (save_report ~model ~seq ~creport vm) report_out
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Compile and run a zoo model, then print per-pass compile stats and \
          the runtime profile (or the JSON report with $(b,--json))")
    Term.(
      const run $ model_arg $ seq_arg $ domains_arg $ runs $ json $ no_guards_arg
      $ no_symbolic_plan_arg $ trace_arg $ report_arg)

(* ------------------------- serving ------------------------- *)

let engine_config_term =
  let workers =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc:"VM worker domains")
  in
  let queue =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:"Pending-queue bound; submissions beyond it are rejected")
  in
  let max_batch =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N" ~doc:"Flush a shape bucket at this many requests")
  in
  let max_wait =
    Arg.(
      value & opt float 2000.0
      & info [ "max-wait-us" ] ~docv:"US"
          ~doc:"... or when its oldest request has waited this long (microseconds)")
  in
  let bucket =
    Arg.(
      value & opt int 8
      & info [ "bucket-multiple" ] ~docv:"M"
          ~doc:
            "Round bucket dims up to a multiple of $(docv) so nearby shapes batch \
             together (0 or 1 = exact-shape buckets). Inputs are never padded: \
             every request runs at its exact shape")
  in
  let timeout =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-us" ] ~docv:"US"
          ~doc:"Default per-request deadline (microseconds from submission)")
  in
  let max_retries =
    Arg.(
      value & opt int 3
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Per-request retries of transient failures (0 disables retrying)")
  in
  let retry_backoff =
    Arg.(
      value & opt float 200.0
      & info [ "retry-backoff-us" ] ~docv:"US"
          ~doc:"Base backoff before the first retry (doubles per attempt)")
  in
  let pool_cap =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool-cap-bytes" ] ~docv:"B"
          ~doc:
            "Per-worker cap on VM storage retained across requests; an \
             allocation that would exceed it fails the request as \
             $(i,alloc)")
  in
  let mk workers queue_capacity max_batch max_wait_us bucket timeout max_retries
      retry_backoff_us pool_cap_bytes =
    if workers < 1 then die "--workers must be >= 1 (got %d)" workers;
    if queue_capacity < 1 then
      die "--queue-capacity must be >= 1 (got %d)" queue_capacity;
    if max_batch < 1 then die "--max-batch must be >= 1 (got %d)" max_batch;
    if max_wait_us < 0.0 then
      die "--max-wait-us must be >= 0 (got %g)" max_wait_us;
    if bucket < 0 then die "--bucket-multiple must be >= 0 (got %d)" bucket;
    Option.iter
      (fun t -> if t <= 0.0 then die "--timeout-us must be > 0 (got %g)" t)
      timeout;
    if max_retries < 0 then die "--max-retries must be >= 0 (got %d)" max_retries;
    if retry_backoff_us < 0.0 then
      die "--retry-backoff-us must be >= 0 (got %g)" retry_backoff_us;
    Option.iter
      (fun b -> if b <= 0 then die "--pool-cap-bytes must be > 0 (got %d)" b)
      pool_cap_bytes;
    {
      Serve.Engine.workers;
      queue_capacity;
      max_batch;
      max_wait_us;
      policy =
        (if bucket <= 1 then Serve.Bucket.Exact
         else Serve.Bucket.Pad { multiple = bucket; max_over = 2.0 });
      default_timeout_us = timeout;
      max_retries;
      retry_backoff_us;
      pool_cap_bytes;
      warm_hints = [];
    }
  in
  Term.(
    const mk $ workers $ queue $ max_batch $ max_wait $ bucket $ timeout
    $ max_retries $ retry_backoff $ pool_cap)

(* ------------------------- fleet options ------------------------- *)

let models_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "models" ] ~docv:"NAME[:w=N],..."
        ~doc:
          "Serve several zoo models as a fleet with weighted worker shares, \
           e.g. $(b,mlp:w=3,rnn:w=1) (default weight 1)")

(** Parse a [--models] spec into (name, zoo entry, weight) triples; any
    malformed entry, unknown model, bad weight or duplicate exits 1 with
    a one-line diagnostic. *)
let parse_models spec : (string * zoo_entry * int) list =
  let entries =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  if entries = [] then die "--models: no models in %S" spec;
  let parsed =
    List.map
      (fun entry ->
        match String.split_on_char ':' entry with
        | [ name ] -> (name, 1)
        | [ name; w ] -> (
            let weight =
              if String.length w > 2 && String.sub w 0 2 = "w=" then
                int_of_string_opt (String.sub w 2 (String.length w - 2))
              else None
            in
            match weight with
            | Some n when n >= 1 -> (name, n)
            | Some n -> die "--models: weight %d for %s must be >= 1" n name
            | None -> die "--models: bad entry %S (want NAME or NAME:w=N)" entry)
        | _ -> die "--models: bad entry %S (want NAME or NAME:w=N)" entry)
      entries
  in
  List.iteri
    (fun i (name, _) ->
      List.iteri
        (fun j (n2, _) ->
          if i < j && name = n2 then die "--models: duplicate model %s" name)
        parsed)
    parsed;
  List.map (fun (name, w) -> (name, lookup name, w)) parsed

(** Breaker / admission / snapshot knobs for the fleet tier, validated
    to one-line exit-1 diagnostics. Produces
    [(breaker config option, admission config option, snapshot dir)]. *)
let fleet_knobs_term =
  let breaker_window =
    Arg.(
      value & opt int 16
      & info [ "breaker-window" ] ~docv:"N"
          ~doc:"Circuit-breaker sliding outcome window (requests)")
  in
  let breaker_threshold =
    Arg.(
      value & opt float 0.5
      & info [ "breaker-threshold" ] ~docv:"F"
          ~doc:"Trip when the window's failure fraction reaches $(docv)")
  in
  let breaker_cooldown =
    Arg.(
      value & opt int 8
      & info [ "breaker-cooldown" ] ~docv:"N"
          ~doc:"Admissions shed while Open before a HalfOpen probe")
  in
  let breaker_probes =
    Arg.(
      value & opt int 2
      & info [ "breaker-probes" ] ~docv:"N"
          ~doc:"HalfOpen trial budget; all must succeed to re-close")
  in
  let no_breaker =
    Arg.(value & flag & info [ "no-breaker" ] ~doc:"Disable circuit breakers")
  in
  let admission_alpha =
    Arg.(
      value & opt float 0.2
      & info [ "admission-alpha" ] ~docv:"F"
          ~doc:"SLO admission EWMA smoothing factor in (0, 1]")
  in
  let admission_margin =
    Arg.(
      value & opt float 1.0
      & info [ "admission-margin" ] ~docv:"F"
          ~doc:"Safety multiplier on the admission wait estimate")
  in
  let no_admission =
    Arg.(
      value & flag
      & info [ "no-admission" ] ~doc:"Disable SLO-aware admission shedding")
  in
  let snapshot_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "snapshot-dir" ] ~docv:"DIR"
          ~doc:
            "Warm-restart from $(docv) when it holds a snapshot manifest, and \
             checkpoint the fleet there after serving")
  in
  let mk w th cd pr nb alpha margin na snap =
    if w < 1 then die "--breaker-window must be >= 1 (got %d)" w;
    if not (th > 0.0 && th <= 1.0) then
      die "--breaker-threshold must be in (0, 1] (got %g)" th;
    if cd < 1 then die "--breaker-cooldown must be >= 1 (got %d)" cd;
    if pr < 1 then die "--breaker-probes must be >= 1 (got %d)" pr;
    if not (alpha > 0.0 && alpha <= 1.0) then
      die "--admission-alpha must be in (0, 1] (got %g)" alpha;
    if margin <= 0.0 then die "--admission-margin must be > 0 (got %g)" margin;
    Option.iter
      (fun d ->
        if String.trim d = "" then die "--snapshot-dir must not be empty";
        if Sys.file_exists d && not (Sys.is_directory d) then
          die "--snapshot-dir %s exists and is not a directory" d)
      snap;
    let breaker =
      if nb then None
      else
        Some
          {
            Serve.Breaker.window = w;
            failure_threshold = th;
            cooldown = cd;
            probes = pr;
          }
    in
    let admission =
      if na then None else Some { Serve.Admission.alpha; margin }
    in
    (breaker, admission, snap)
  in
  Term.(
    const mk $ breaker_window $ breaker_threshold $ breaker_cooldown
    $ breaker_probes $ no_breaker $ admission_alpha $ admission_margin
    $ no_admission $ snapshot_dir)

(** Cold-load through the warm cache (serialize → deserialize → relink),
    then load again to show the warm path. *)
let cache_load ?(quiet = false) ?options ~model (entry : zoo_entry) =
  let cache = Serve.Cache.create () in
  let t0 = Unix.gettimeofday () in
  let exe = Serve.Cache.load ?options cache ~name:model ~build:entry.build in
  let cold_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  ignore (Serve.Cache.load ?options cache ~name:model ~build:entry.build);
  let bytes =
    match Serve.Cache.serialized_bytes cache ~name:model with Some b -> b | None -> 0
  in
  if not quiet then
    Fmt.pr "loaded %s: cold %.1f ms (%d bytes serialized), warm hits %d@." model cold_ms
      bytes (Serve.Cache.hits cache);
  exe

let save_serve_trace ~model tr path =
  let meta = [ ("model", model); ("mode", "serve") ] in
  Nimble_vm.Trace.save_file ~meta tr path;
  Fmt.pr "trace: %s (%d spans, %d dropped)@." path
    (List.length (Nimble_vm.Trace.spans tr))
    (Nimble_vm.Trace.dropped tr)

(** The serving report: [nimble-profile/v1] from a sequential reference
    VM, with the engine's statistics embedded as the [server] section
    (and, when specialization ran, the tuner's as [autotune]). *)
let save_serve_report ?autotune ~ref_vm engine path =
  let server = Serve.Engine.server_json engine in
  Nimble_vm.Json.save_file
    (Nimble_vm.Profiler.to_json ~server ?autotune (Interp.profiler ref_vm))
    path;
  Fmt.pr "report: %s@." path

let serve_cmd =
  let model_pos =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"MODEL" ~doc:"Model from the zoo (omit with --models)")
  in
  let requests =
    Arg.(value & opt int 64 & info [ "requests" ] ~docv:"N" ~doc:"Requests to serve")
  in
  let seq_min =
    Arg.(value & opt int 4 & info [ "seq-min" ] ~doc:"Smallest sequence length served")
  in
  let seq_max =
    Arg.(value & opt int 16 & info [ "seq-max" ] ~doc:"Largest sequence length served")
  in
  let serve_one model cfg options autotuner tr requests seq_min seq_max
      trace_out report_out =
    let entry = lookup model in
    let exe = cache_load ~options ~model entry in
    let engine = Serve.Engine.create ~config:cfg ?trace:tr ?autotune:autotuner exe in
    let span = seq_max - seq_min + 1 in
    (* round-robin over the seq range: distinct shapes exercise bucketing *)
    let jobs =
      Array.init requests (fun i ->
          let seq = seq_min + (i mod span) in
          (seq, entry.sample_input ~seq))
    in
    let t0 = Unix.gettimeofday () in
    let tickets =
      Array.map (fun (seq, input) -> Serve.Engine.submit engine ~shape:[| seq |] input) jobs
    in
    let ok = ref 0 and rejected = ref 0 and timed_out = ref 0 and failed = ref 0 in
    let first_ok = ref None in
    Array.iteri
      (fun i tk ->
        match tk with
        | Error _ -> incr rejected
        | Ok tk -> (
            match Serve.Engine.wait tk with
            | Ok out ->
                incr ok;
                if !first_ok = None then first_ok := Some (i, out)
            | Error (Serve.Engine.Rejected | Serve.Engine.Shed | Serve.Engine.Tripped) ->
                (* Shed/Tripped need a fleet-tier controller; grouped with
                   rejects so the single-engine tally stays total *)
                incr rejected
            | Error Serve.Engine.Timed_out -> incr timed_out
            | Error (Serve.Engine.Failed fl) ->
                incr failed;
                Fmt.epr "request failed: %a@." Interp.pp_failure fl))
      tickets;
    let wall_s = Unix.gettimeofday () -. t0 in
    (* re-run one served request on a sequential reference VM: batched
       execution must be bitwise-identical (and the reference profile
       anchors the --report document) *)
    let ref_vm = Nimble.vm exe in
    (* the reference must be fault-free even mid-chaos-run, so suspend
       injection (counters kept for the report) while it executes *)
    Fault.with_suspended (fun () ->
        match !first_ok with
        | Some (i, Nimble_vm.Obj.Tensor served) -> (
            let _, input = jobs.(i) in
            match Interp.invoke ref_vm [ input ] with
            | Nimble_vm.Obj.Tensor reference ->
                Fmt.pr "bitwise vs sequential reference: %b@."
                  (Tensor.equal served.Nimble_vm.Obj.data reference.Nimble_vm.Obj.data)
            | _ -> ())
        | Some (i, _) ->
            let _, input = jobs.(i) in
            ignore (Interp.invoke ref_vm [ input ])
        | None -> ());
    Serve.Engine.shutdown engine;
    let au_summary = Option.map (fun au -> finish_autotuner au) autotuner in
    Fmt.pr "served %d/%d in %.1f ms (%.0f req/s); rejected %d, timed out %d, failed %d@."
      !ok requests (1e3 *. wall_s)
      (float_of_int !ok /. Float.max 1e-9 wall_s)
      !rejected !timed_out !failed;
    Fmt.pr "@.%a@." Serve.Stats.pp_summary (Serve.Engine.stats engine);
    (match (tr, trace_out) with
    | Some tr, Some path -> save_serve_trace ~model tr path
    | _ -> ());
    Option.iter (save_serve_report ?autotune:au_summary ~ref_vm engine) report_out
  in
  let serve_fleet spec (breaker, admission, snapshot_dir) cfg options tr
      requests seq_min seq_max trace_out report_out =
    let specs = parse_models spec in
    let fleet_cfg =
      {
        Serve.Fleet.total_workers = cfg.Serve.Engine.workers;
        engine = cfg;
        admission;
        breaker;
      }
    in
    let fleet =
      Serve.Fleet.create ~options ?trace:tr ~config:fleet_cfg
        (List.map
           (fun (name, (entry : zoo_entry), weight) ->
             { Serve.Fleet.name; build = entry.build; weight })
           specs)
    in
    (* a manifest in the snapshot dir means a previous run checkpointed:
       warm-restart every model from it (relink-only, tunes replayed,
       arenas pre-warmed) before taking traffic *)
    (match snapshot_dir with
    | Some dir when Sys.file_exists (Filename.concat dir "MANIFEST.json") ->
        List.iter
          (fun (name, _, _) ->
            try
              let r = Serve.Fleet.warm_restart fleet ~dir ~model:name in
              Fmt.pr "warm-restarted %s from %s: %d tunes, %d arena hints@."
                name dir r.Serve.Cache.r_tunes_applied
                (List.length r.Serve.Cache.r_arena_hints)
            with Failure msg -> die "snapshot restore failed: %s" msg)
          specs
    | _ -> ());
    let names = Array.of_list (List.map (fun (n, _, _) -> n) specs) in
    let entries = Array.of_list (List.map (fun (_, e, _) -> e) specs) in
    let span = seq_max - seq_min + 1 in
    (* round-robin over models and the seq range *)
    let jobs =
      Array.init requests (fun i ->
          let mi = i mod Array.length names in
          let seq = seq_min + (i mod span) in
          (mi, seq, entries.(mi).sample_input ~seq))
    in
    let t0 = Unix.gettimeofday () in
    let tickets =
      Array.map
        (fun (mi, seq, input) ->
          (mi, Serve.Fleet.submit fleet ~model:names.(mi) ~shape:[| seq |] input))
        jobs
    in
    let ok = ref 0 and rejected = ref 0 and shed = ref 0 and tripped = ref 0 in
    let timed_out = ref 0 and failed = ref 0 in
    let first_ok = ref None in
    Array.iteri
      (fun i (mi, tk) ->
        let outcome =
          match tk with Ok tk -> Serve.Fleet.wait tk | Error e -> Error e
        in
        match outcome with
        | Ok out ->
            incr ok;
            if !first_ok = None then first_ok := Some (i, mi, out)
        | Error Serve.Engine.Rejected -> incr rejected
        | Error Serve.Engine.Shed -> incr shed
        | Error Serve.Engine.Tripped -> incr tripped
        | Error Serve.Engine.Timed_out -> incr timed_out
        | Error (Serve.Engine.Failed fl) ->
            incr failed;
            Fmt.epr "request failed: %a@." Interp.pp_failure fl)
      tickets;
    let wall_s = Unix.gettimeofday () -. t0 in
    (* bitwise check of one served request against a sequential reference
       VM of the same model (fault injection suspended) *)
    let ref_vm = ref None in
    Fault.with_suspended (fun () ->
        match !first_ok with
        | Some (i, mi, out) -> (
            let _, _, input = jobs.(i) in
            let exe =
              Serve.Cache.load ~options (Serve.Fleet.cache fleet)
                ~name:names.(mi) ~build:entries.(mi).build
            in
            let vm = Nimble.vm exe in
            ref_vm := Some vm;
            match (out, Interp.invoke vm [ input ]) with
            | Nimble_vm.Obj.Tensor served, Nimble_vm.Obj.Tensor reference ->
                Fmt.pr "bitwise vs sequential reference (%s): %b@." names.(mi)
                  (Tensor.equal served.Nimble_vm.Obj.data reference.Nimble_vm.Obj.data)
            | _ -> ())
        | None -> ());
    (match snapshot_dir with
    | Some dir ->
        let n = Serve.Fleet.snapshot fleet ~dir in
        Fmt.pr "snapshot: %d models -> %s@." n dir
    | None -> ());
    Fmt.pr
      "served %d/%d in %.1f ms (%.0f req/s); rejected %d, shed %d, tripped \
       %d, timed out %d, failed %d@."
      !ok requests (1e3 *. wall_s)
      (float_of_int !ok /. Float.max 1e-9 wall_s)
      !rejected !shed !tripped !timed_out !failed;
    List.iter
      (fun (name, summary) ->
        let c, lanes, open_lanes = Serve.Fleet.breaker_totals fleet ~model:name in
        let weight, workers = Serve.Fleet.share fleet ~model:name in
        Fmt.pr
          "@.[%s] weight %d, workers %d; breakers: %d lanes (%d open), %d \
           trips, %d shed@.%a@."
          name weight workers lanes open_lanes c.Serve.Breaker.c_trips
          c.Serve.Breaker.c_shed Serve.Stats.pp_summary summary)
      (Serve.Fleet.model_stats fleet);
    (match (tr, trace_out) with
    | Some tr, Some path -> save_serve_trace ~model:spec tr path
    | _ -> ());
    Option.iter
      (fun path ->
        let prof =
          match !ref_vm with
          | Some vm -> Interp.profiler vm
          | None ->
              Interp.profiler
                (Nimble.vm
                   (Serve.Cache.load ~options (Serve.Fleet.cache fleet)
                      ~name:names.(0) ~build:entries.(0).build))
        in
        Nimble_vm.Json.save_file
          (Nimble_vm.Profiler.to_json ~fleet:(Serve.Fleet.fleet_json fleet) prof)
          path;
        Fmt.pr "report: %s@." path)
      report_out;
    Serve.Fleet.shutdown fleet
  in
  let run model_opt models_spec knobs domains cfg
      (au_on, au_threshold, au_interval) requests seq_min seq_max no_guards
      no_symbolic_plan fault trace_out report_out =
    apply_domains domains;
    apply_fault fault;
    if requests < 1 then die "--requests must be >= 1 (got %d)" requests;
    if seq_min < 1 then die "--seq-min must be >= 1 (got %d)" seq_min;
    if seq_max < seq_min then
      die "--seq-max (%d) must be >= --seq-min (%d)" seq_max seq_min;
    let options =
      compile_options ~autotune:au_on ?autotune_threshold:au_threshold
        ?autotune_interval:au_interval ~no_guards ~no_symbolic_plan ()
    in
    let tr =
      match trace_out with Some _ -> Some (Nimble_vm.Trace.create ()) | None -> None
    in
    match (model_opt, models_spec) with
    | Some _, Some _ -> die "pass either MODEL or --models, not both"
    | None, None -> die "name a MODEL or pass --models NAME[:w=N],..."
    | Some model, None ->
        let autotuner = make_autotuner options in
        serve_one model cfg options autotuner tr requests seq_min seq_max
          trace_out report_out
    | None, Some spec ->
        serve_fleet spec knobs cfg options tr requests seq_min seq_max
          trace_out report_out
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve one zoo model through the batching engine — or a whole fleet \
          of weighted models with SLO admission, circuit breakers and \
          snapshot/warm-restart ($(b,--models)) — with a bitwise check \
          against a sequential reference run")
    Term.(
      const run $ model_pos $ models_arg $ fleet_knobs_term $ domains_arg
      $ engine_config_term $ autotune_term $ requests $ seq_min $ seq_max
      $ no_guards_arg $ no_symbolic_plan_arg $ fault_arg $ trace_arg
      $ report_arg)

let loadgen_cmd =
  let rate =
    Arg.(value & opt float 200.0 & info [ "rate" ] ~docv:"RPS" ~doc:"Aggregate arrival rate")
  in
  let duration =
    Arg.(value & opt float 1.0 & info [ "duration" ] ~docv:"S" ~doc:"Generation window, seconds")
  in
  let clients =
    Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Client domains")
  in
  let mix =
    Arg.(
      value & opt string "8:1"
      & info [ "mix" ] ~docv:"SEQ:W,..."
          ~doc:
            "Weighted sequence-length mix, e.g. $(b,4:0.5,16:0.5); weights need \
             not sum to 1")
  in
  let steady =
    Arg.(
      value & flag
      & info [ "steady" ] ~doc:"Fixed inter-arrival gaps instead of Poisson")
  in
  let process =
    Arg.(
      value
      & opt (some string) None
      & info [ "process" ] ~docv:"P"
          ~doc:
            "Arrival process: $(b,poisson), $(b,steady), $(b,bursty=N) (bursts \
             of N back-to-back arrivals), or $(b,diurnal=CxD) (C sinusoidal \
             cycles of depth D over the window)")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Arrival/mix RNG seed") in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the $(i,server) JSON section instead of the table")
  in
  let parse_mix s : Serve.Loadgen.mix =
    String.split_on_char ',' s
    |> List.filter (fun e -> String.trim e <> "")
    |> List.map (fun entry ->
           let bad () =
             Fmt.epr "bad mix entry %S (want SEQ or SEQ:WEIGHT, e.g. 4:0.5,16:0.5)@."
               entry;
             exit 1
           in
           match String.split_on_char ':' (String.trim entry) with
           | [ seq ] -> (
               match int_of_string_opt seq with
               | Some s -> ([| s |], 1.0)
               | None -> bad ())
           | [ seq; w ] -> (
               match (int_of_string_opt seq, float_of_string_opt w) with
               | Some s, Some w -> ([| s |], w)
               | _ -> bad ())
           | _ -> bad ())
  in
  (* malformed --process values exit 1 with a one-line diagnostic *)
  let parse_process s : Serve.Loadgen.process =
    let bad () =
      die "bad --process %S (want poisson, steady, bursty=N, or diurnal=CxD)" s
    in
    match String.split_on_char '=' (String.lowercase_ascii (String.trim s)) with
    | [ "poisson" ] -> Serve.Loadgen.Poisson
    | [ "steady" ] -> Serve.Loadgen.Steady
    | [ "bursty"; n ] -> (
        match int_of_string_opt n with
        | Some burst when burst >= 1 -> Serve.Loadgen.Bursty { burst }
        | Some burst -> die "--process bursty=%d: burst must be >= 1" burst
        | None -> bad ())
    | [ "diurnal"; cd ] -> (
        match String.split_on_char 'x' cd with
        | [ c; d ] -> (
            match (float_of_string_opt c, float_of_string_opt d) with
            | Some cycles, Some depth when cycles > 0.0 && depth >= 0.0 && depth < 1.0
              ->
                Serve.Loadgen.Diurnal { cycles; depth }
            | Some _, Some _ ->
                die "--process diurnal=%s: want cycles > 0 and depth in [0, 1)" cd
            | _ -> bad ())
        | _ -> bad ())
    | _ -> bad ()
  in
  let run model domains cfg (au_on, au_threshold, au_interval) rate duration
      clients mix steady process seed json no_guards no_symbolic_plan fault
      trace_out report_out =
    apply_domains domains;
    apply_fault fault;
    if rate <= 0.0 then die "--rate must be > 0 (got %g)" rate;
    if duration <= 0.0 then die "--duration must be > 0 (got %g)" duration;
    if clients < 1 then die "--clients must be >= 1 (got %d)" clients;
    let process =
      match process with
      | Some p ->
          if steady then die "pass either --steady or --process, not both";
          parse_process p
      | None -> if steady then Serve.Loadgen.Steady else Serve.Loadgen.Poisson
    in
    let mix_parsed = parse_mix mix in
    if mix_parsed = [] then die "--mix must name at least one SEQ:WEIGHT entry";
    List.iter
      (fun (shape, w) ->
        if shape.(0) < 1 then die "--mix sequence lengths must be >= 1 (got %d)" shape.(0);
        if w <= 0.0 then die "--mix weights must be > 0 (got %g)" w)
      mix_parsed;
    let entry = lookup model in
    let options =
      compile_options ~autotune:au_on ?autotune_threshold:au_threshold
        ?autotune_interval:au_interval ~no_guards ~no_symbolic_plan ()
    in
    let exe = cache_load ~quiet:json ~options ~model entry in
    let tr =
      match trace_out with Some _ -> Some (Nimble_vm.Trace.create ()) | None -> None
    in
    let autotuner = make_autotuner options in
    let engine = Serve.Engine.create ~config:cfg ?trace:tr ?autotune:autotuner exe in
    let lcfg =
      {
        Serve.Loadgen.rate_rps = rate;
        duration_s = duration;
        clients;
        mix = mix_parsed;
        process;
        seed;
        timeout_us = cfg.Serve.Engine.default_timeout_us;
      }
    in
    let result =
      Serve.Loadgen.run ~config:lcfg engine ~make_input:(fun ~shape ->
          entry.sample_input ~seq:shape.(0))
    in
    Serve.Engine.shutdown engine;
    ignore (Option.map (finish_autotuner ~quiet:json) autotuner);
    if json then
      print_string (Nimble_vm.Json.to_string_pretty (Serve.Engine.server_json engine))
    else begin
      Fmt.pr "offered %d in %.2f s -> achieved %.0f req/s@." result.Serve.Loadgen.offered
        result.Serve.Loadgen.wall_s result.Serve.Loadgen.achieved_rps;
      Fmt.pr "@.%a@." Serve.Stats.pp_summary result.Serve.Loadgen.summary
    end;
    (match (tr, trace_out) with
    | Some tr, Some path -> save_serve_trace ~model tr path
    | _ -> ());
    Option.iter
      (fun path ->
        Nimble_vm.Json.save_file (Serve.Engine.server_json engine) path;
        Fmt.pr "report: %s@." path)
      report_out
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:
         "Drive the serving engine with an open-loop synthetic load (seeded \
          Poisson or steady arrivals over a weighted shape mix) and report \
          throughput, latency percentiles and the batch-size histogram")
    Term.(
      const run $ model_arg $ domains_arg $ engine_config_term $ autotune_term
      $ rate $ duration $ clients $ mix $ steady $ process $ seed $ json
      $ no_guards_arg $ no_symbolic_plan_arg $ fault_arg $ trace_arg
      $ report_arg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --------------------------- lint --------------------------- *)

(** The example programs' IR modules, replicated here so [lint all] covers
    the same programs the [examples/] executables (and [dune runtest])
    run: the quickstart dense/bias_add/tanh chain, the detection
    post-processing nms/strided_slice/sqrt pipeline, and the
    data-dependent [arange]. *)
let example_modules () : (string * Nimble_ir.Irmod.t) list =
  let open Nimble_ir in
  let rng = Rng.create ~seed:42 in
  let quickstart =
    let x = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 16 ]) "x" in
    let w = Tensor.randn ~scale:0.2 rng [| 8; 16 |] in
    let b = Tensor.randn ~scale:0.2 rng [| 8 |] in
    Irmod.of_main
      (Expr.fn_def [ x ]
         (Expr.op_call "tanh"
            [
              Expr.op_call "bias_add"
                [ Expr.op_call "dense" [ Expr.Var x; Expr.Const w ]; Expr.Const b ];
            ]))
  in
  let detection =
    let boxes = Expr.fresh_var ~ty:(Ty.tensor [ Dim.Any; Dim.static 5 ]) "boxes" in
    let kept = Expr.fresh_var "kept" in
    let scores = Expr.fresh_var "scores" in
    Irmod.of_main
      (Expr.fn_def [ boxes ]
         (Expr.Let
            ( kept,
              Expr.op_call ~attrs:[ ("iou", Attrs.Float 0.45) ] "nms"
                [ Expr.Var boxes ],
              Expr.Let
                ( scores,
                  Expr.op_call
                    ~attrs:
                      [
                        ("begins", Attrs.Ints [ 0; 0 ]);
                        ("ends", Attrs.Ints [ 1000000; 1 ]);
                      ]
                    "strided_slice" [ Expr.Var kept ],
                  Expr.op_call "sqrt" [ Expr.Var scores ] ) )))
  in
  let arange =
    let s = Expr.fresh_var ~ty:(Ty.scalar ()) "stop" in
    Irmod.of_main
      (Expr.fn_def [ s ]
         (Expr.op_call "arange"
            [ Expr.const_scalar 0.0; Expr.Var s; Expr.const_scalar 1.0 ]))
  in
  [
    ("ex:quickstart", quickstart);
    ("ex:detection", detection);
    ("ex:arange", arange);
  ]

let lint_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "A zoo model, $(b,all) (every zoo model plus the example \
             programs), or a path to a serialized $(i,.nimble) executable")
  in
  let run target =
    let failures = ref 0 in
    let print_diags name ds =
      incr failures;
      List.iter (fun d -> Fmt.pr "%-14s %a@." name Nimble_analysis.Diag.pp d) ds
    in
    (* compile with verification on and report every violation the pipeline
       checks found (dialect lints + bytecode verifier) *)
    let lint_module name m =
      let options = { Nimble.default_options with Nimble.verify_passes = true } in
      let _exe, report = Nimble.compile_with_report ~options m in
      match report.Nimble.verify_diags with
      | [] ->
          Fmt.pr "%-14s ok (%s)@." name
            (String.concat ", "
               (List.map
                  (fun (v : Nimble.verify_stat) -> v.Nimble.verify_name)
                  report.Nimble.verify))
      | ds -> print_diags name ds
    in
    let lint_file path =
      match Nimble_analysis.Verifier.load_file path with
      | _exe -> Fmt.pr "%-14s ok (bytecode)@." path
      | exception Nimble_analysis.Verifier.Verify_error ds -> print_diags path ds
      | exception Nimble_vm.Serialize.Format_error msg ->
          incr failures;
          Fmt.pr "%-14s undecodable: %s@." path msg
    in
    (if target = "all" then begin
       List.iter (fun (n, e) -> lint_module n (e.build ())) (zoo ());
       List.iter (fun (n, m) -> lint_module n m) (example_modules ())
     end
     else if List.mem_assoc target (zoo ()) then
       lint_module target ((lookup target).build ())
     else if Sys.file_exists target then lint_file target
     else
       die "unknown lint target %s (expected a zoo model, 'all', or a file)"
         target);
    if !failures > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the compile-pipeline dialect lints and the bytecode verifier \
          and print every violation (exit 1 if any); on a $(i,.nimble) file, \
          verify the stored bytecode")
    Term.(const run $ target)

let classify_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "A zoo model or $(b,all) (every zoo model plus the example \
             programs)")
  in
  let run target =
    let classify_module name m =
      let _exe, report = Nimble.compile_with_report m in
      Fmt.pr "== %s@.%a@." name Nimble.pp_classify report
    in
    if target = "all" then begin
      List.iter (fun (n, e) -> classify_module n (e.build ())) (zoo ());
      List.iter (fun (n, m) -> classify_module n m) (example_modules ())
    end
    else if List.mem_assoc target (zoo ()) then
      classify_module target ((lookup target).build ())
    else die "unknown classify target %s (expected a zoo model or 'all')" target
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:
         "Print the operator-classification table per function: \
          data-dependent/upper-bound call sites, sites proven static by \
          shape-value dominance, and fused groups crossing a formerly \
          dynamic boundary")
    Term.(const run $ target)

let parse_cmd =
  let path =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Textual IR file")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Serialize executable here")
  in
  let run path output =
    let m = Nimble_ir.Text_format.parse_module (read_file path) in
    let exe, report = Nimble.compile_with_report m in
    Fmt.pr "parsed and compiled %s@.%a@." path Nimble.pp_report report;
    (match Nimble_analysis.Verifier.verify exe with
    | [] -> Fmt.pr "bytecode verifies@."
    | ds ->
        List.iter (fun d -> Fmt.pr "VERIFY: %a@." Nimble_analysis.Diag.pp d) ds);
    match output with
    | Some out ->
        Nimble_vm.Serialize.save_file exe out;
        Fmt.pr "saved %s@." out
    | None -> Fmt.pr "%a@." (fun ppf m -> Nimble_ir.Text_format.print_module ppf m) m
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse a textual IR file, compile and validate it")
    Term.(const run $ path $ output)

let () =
  let doc = "Nimble: compile and execute dynamic neural networks" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "nimble_cli" ~doc)
          [
            models_cmd;
            compile_cmd;
            disasm_cmd;
            run_cmd;
            profile_cmd;
            serve_cmd;
            loadgen_cmd;
            lint_cmd;
            classify_cmd;
            parse_cmd;
          ]))
