(* Schema gate for committed benchmark baselines: every non-empty line of
   each argument file must parse as a [nimble-bench/v1] table. Exits 1 on
   any drift so `dune runtest` catches accidental format changes before a
   downstream scraper does.

   Checked per table: the exact [schema] tag; [title]/[unit] strings;
   [columns] a non-empty list of strings; [rows] a non-empty list of
   objects, each carrying a [label] string and a [cells] list whose length
   equals the column count and whose entries are numbers or null. *)

module Json = Nimble_vm.Json

let problems = ref 0

let fail file line fmt =
  Format.kasprintf
    (fun msg ->
      incr problems;
      Format.eprintf "%s:%d: %s@." file line msg)
    fmt

let check_table file lineno json =
  let str_member key =
    match Json.member key json with
    | Some (Json.String s) -> Some s
    | Some _ ->
        fail file lineno "%S is not a string" key;
        None
    | None ->
        fail file lineno "missing key %S" key;
        None
  in
  (match str_member "schema" with
  | Some "nimble-bench/v1" | None -> ()
  | Some other -> fail file lineno "schema is %S, want \"nimble-bench/v1\"" other);
  ignore (str_member "title");
  ignore (str_member "unit");
  let ncols =
    match Json.member "columns" json with
    | Some (Json.List cols) when cols <> [] ->
        List.iter
          (function
            | Json.String _ -> ()
            | _ -> fail file lineno "non-string entry in \"columns\"")
          cols;
        List.length cols
    | Some _ | None ->
        fail file lineno "missing or empty \"columns\" list";
        -1
  in
  match Json.member "rows" json with
  | Some (Json.List rows) when rows <> [] ->
      List.iteri
        (fun i row ->
          (match Json.member "label" row with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "row %d: missing string \"label\"" i);
          match Json.member "cells" row with
          | Some (Json.List cells) ->
              if ncols >= 0 && List.length cells <> ncols then
                fail file lineno "row %d: %d cells for %d columns" i
                  (List.length cells) ncols;
              List.iter
                (function
                  | Json.Float _ | Json.Int _ | Json.Null -> ()
                  | _ -> fail file lineno "row %d: cell is not number|null" i)
                cells
          | _ -> fail file lineno "row %d: missing \"cells\" list" i)
        rows
  | Some _ | None -> fail file lineno "missing or empty \"rows\" list"

let check_file file =
  let ic = open_in file in
  let tables = ref 0 in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         incr tables;
         match Json.of_string line with
         | json -> check_table file !lineno json
         | exception Json.Parse_error msg ->
             fail file !lineno "JSON parse error: %s" msg
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !tables = 0 then fail file 0 "no tables found (empty file)"

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: bench_check FILE...";
    exit 2
  end;
  List.iter check_file files;
  if !problems > 0 then begin
    Format.eprintf "bench_check: %d problem(s)@." !problems;
    exit 1
  end
