(* Schema gate for committed benchmark baselines: every non-empty line of
   each argument file must parse as a [nimble-bench/v1] table, a
   [nimble-serve/v1] serving-benchmark document, a [nimble-chaos/v1]
   fault-injection document, or a [nimble-compile/v1] compile report (the
   [schema] member picks the check). Exits 1 on any drift so
   `dune runtest` catches accidental format changes before a downstream
   scraper does.

   Checked per bench table: the exact [schema] tag; [title]/[unit]
   strings; [columns] a non-empty list of strings; [rows] a non-empty list
   of objects, each carrying a [label] string and a [cells] list whose
   length equals the column count and whose entries are numbers or null.

   Checked per serve document: [title]/[model] strings and a [points]
   list of at least three (arrival rate x shape mix) measurements, each
   with numeric [throughput_rps]/[p50_ms]/[p99_ms]/[allocs_per_request],
   integer [rejected]/[timeouts]/[queue_depth_hwm]/[arena_reuses], and a
   non-empty [batch_hist] object of integer counts.

   Checked per chaos document: [title]/[model]/[spec] strings; integer
   [requests]/[completed]/[failed]/[rejected]/[retries]/[worker_restarts]
   with the drain invariant completed + failed + rejected = requests; a
   boolean [bitwise_ok] that must be true (successful responses stay
   bitwise-equal to the fault-free reference); [failure_kinds] an object
   of integer tallies; and a non-empty [fault_points] object whose
   entries carry integer [attempts]/[hits] with hits <= attempts.

   Checked per compile report: integer [instructions]; integer
   [registers_before]/[registers_after] with after <= before (dead-register
   compaction never grows a frame); classification fields with
   sites_total >= classified_static >= 0 (top level and every [classify]
   row) and — across all compile lines of the file — at least one report
   with [fused_across_dynamic] > 0, so the committed baseline demonstrates
   a fusion across a proven formerly-dynamic boundary; a non-empty
   [passes] list of [{name, seconds, nodes_before, nodes_after}]; and a
   non-empty [verify] list of [{name, seconds, violations}] whose
   [violations] are all zero — a committed baseline must come from a
   pipeline the verifier and dialect lints accept (docs/ANALYSIS.md).

   Checked per tune document ([nimble-tune/v1], the BENCH_tune.json
   baseline from the online-specialization bench): [title]/[model]
   strings; a [points] list of at least two phases, each with a string
   [phase], numeric [hit_rate]/[p50_ms]/[p99_ms]/[throughput_rps] and
   integer [hits]/[misses]/[tuned_calls]/[installs]; at least one
   [before] and one [after] phase, with every [after] hit rate >= every
   [before] hit rate (specialization must not lose ground); a [bitwise_ok]
   boolean that must be true (live installs never change outputs); and a
   [warm_restart_pretuned] boolean that must be true (the persisted tune
   table relinks pre-specialized — docs/TUNING.md).

   Checked per fleet document ([nimble-fleet/v1], the BENCH_fleet.json
   baseline from the multi-model fleet bench): a [models] list of at
   least two weighted entries; a [points] list with at least three
   offered-rate points past saturation, each carrying numeric
   [offered_rate_rps]/[goodput_rps] and integer outcome tallies; the
   no-collapse invariant goodput@2x >= 0.5 x peak; nonzero
   [shed_total]/[tripped_total]/[trips] (the baseline must actually
   exercise SLO admission and the breakers); [snapshot_models] >= 1 with
   numeric cold-start vs warm-restart times; and
   [warm_restart_relink_only]/[bitwise_ok] booleans that must be true
   (docs/SERVING.md). *)

module Json = Nimble_vm.Json

let problems = ref 0

let fail file line fmt =
  Format.kasprintf
    (fun msg ->
      incr problems;
      Format.eprintf "%s:%d: %s@." file line msg)
    fmt

let str_member file lineno json key =
  match Json.member key json with
  | Some (Json.String s) -> Some s
  | Some _ ->
      fail file lineno "%S is not a string" key;
      None
  | None ->
      fail file lineno "missing key %S" key;
      None

(* a [nimble-serve/v1] line: the BENCH_serve.json baseline *)
let check_serve file lineno json =
  let str_member = str_member file lineno json in
  ignore (str_member "title");
  ignore (str_member "model");
  let num ctx point key =
    match Json.member key point with
    | Some (Json.Float _) | Some (Json.Int _) -> ()
    | _ -> fail file lineno "%s: missing numeric %S" ctx key
  in
  let int_ ctx point key =
    match Json.member key point with
    | Some (Json.Int _) -> ()
    | _ -> fail file lineno "%s: missing integer %S" ctx key
  in
  match Json.member "points" json with
  | Some (Json.List points) ->
      if List.length points < 3 then
        fail file lineno "%d points, want at least 3 (rate x mix grid)"
          (List.length points);
      List.iteri
        (fun i point ->
          let ctx = Fmt.str "point %d" i in
          (match Json.member "label" point with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "%s: missing string \"label\"" ctx);
          num ctx point "rate_rps";
          num ctx point "throughput_rps";
          num ctx point "p50_ms";
          num ctx point "p99_ms";
          int_ ctx point "rejected";
          int_ ctx point "timeouts";
          int_ ctx point "queue_depth_hwm";
          num ctx point "allocs_per_request";
          int_ ctx point "arena_reuses";
          match Json.member "batch_hist" point with
          | Some (Json.Obj ((_ :: _) as entries)) ->
              List.iter
                (fun (size, count) ->
                  (match int_of_string_opt size with
                  | Some _ -> ()
                  | None ->
                      fail file lineno "%s: batch_hist key %S is not a size" ctx size);
                  match count with
                  | Json.Int _ -> ()
                  | _ -> fail file lineno "%s: batch_hist[%s] is not an integer" ctx size)
                entries
          | _ -> fail file lineno "%s: missing non-empty \"batch_hist\" object" ctx)
        points
  | Some _ | None -> fail file lineno "missing \"points\" list"

(* a [nimble-chaos/v1] line: the BENCH_chaos.json baseline *)
let check_chaos file lineno json =
  let str_member = str_member file lineno json in
  ignore (str_member "title");
  ignore (str_member "model");
  ignore (str_member "spec");
  let int_ json key =
    match Json.member key json with
    | Some (Json.Int n) -> Some n
    | _ ->
        fail file lineno "missing integer %S" key;
        None
  in
  let requests = int_ json "requests" in
  let completed = int_ json "completed" in
  let failed = int_ json "failed" in
  let rejected = int_ json "rejected" in
  ignore (int_ json "retries");
  ignore (int_ json "worker_restarts");
  (match (requests, completed, failed, rejected) with
  | Some r, Some c, Some f, Some j ->
      if c + f + j <> r then
        fail file lineno "drain violated: %d completed + %d failed + %d rejected <> %d"
          c f j r
  | _ -> ());
  (match Json.member "bitwise_ok" json with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) ->
      fail file lineno "bitwise_ok is false: served results drifted from the reference"
  | _ -> fail file lineno "missing boolean \"bitwise_ok\"");
  (match Json.member "failure_kinds" json with
  | Some (Json.Obj entries) ->
      List.iter
        (fun (kind, count) ->
          match count with
          | Json.Int _ -> ()
          | _ -> fail file lineno "failure_kinds[%s] is not an integer" kind)
        entries
  | _ -> fail file lineno "missing \"failure_kinds\" object");
  match Json.member "fault_points" json with
  | Some (Json.Obj ((_ :: _) as entries)) ->
      List.iter
        (fun (point, stats) ->
          match (Json.member "attempts" stats, Json.member "hits" stats) with
          | Some (Json.Int a), Some (Json.Int h) ->
              if h > a then
                fail file lineno "fault_points[%s]: %d hits > %d attempts" point h a
          | _ ->
              fail file lineno "fault_points[%s]: missing integer attempts/hits" point)
        entries
  | _ -> fail file lineno "missing non-empty \"fault_points\" object"

(* a [nimble-tune/v1] line: the BENCH_tune.json baseline *)
let check_tune file lineno json =
  let str_member = str_member file lineno json in
  ignore (str_member "title");
  ignore (str_member "model");
  let num ctx point key =
    match Json.member key point with
    | Some (Json.Float _) | Some (Json.Int _) -> ()
    | _ -> fail file lineno "%s: missing numeric %S" ctx key
  in
  let int_ ctx point key =
    match Json.member key point with
    | Some (Json.Int _) -> ()
    | _ -> fail file lineno "%s: missing integer %S" ctx key
  in
  let hit_rate point =
    match Json.member "hit_rate" point with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  (match Json.member "points" json with
  | Some (Json.List points) ->
      if List.length points < 2 then
        fail file lineno "%d points, want at least 2 (a before and an after phase)"
          (List.length points);
      List.iteri
        (fun i point ->
          let ctx = Fmt.str "point %d" i in
          (match Json.member "phase" point with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "%s: missing string \"phase\"" ctx);
          num ctx point "hit_rate";
          num ctx point "p50_ms";
          num ctx point "p99_ms";
          num ctx point "throughput_rps";
          int_ ctx point "hits";
          int_ ctx point "misses";
          int_ ctx point "tuned_calls";
          int_ ctx point "installs")
        points;
      let phase name =
        List.filter
          (fun p -> Json.member "phase" p = Some (Json.String name))
          points
      in
      let before = phase "before" and after = phase "after" in
      if before = [] then fail file lineno "no \"before\" phase point";
      if after = [] then fail file lineno "no \"after\" phase point";
      List.iter
        (fun b ->
          List.iter
            (fun a ->
              match (hit_rate b, hit_rate a) with
              | Some hb, Some ha when ha < hb ->
                  fail file lineno
                    "hit rate regressed: after %.3f < before %.3f (re-tuning \
                     must not lose ground)"
                    ha hb
              | _ -> ())
            after)
        before
  | Some _ | None -> fail file lineno "missing \"points\" list");
  (match Json.member "bitwise_ok" json with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) ->
      fail file lineno "bitwise_ok is false: a live install changed outputs"
  | _ -> fail file lineno "missing boolean \"bitwise_ok\"");
  match Json.member "warm_restart_pretuned" json with
  | Some (Json.Bool true) -> ()
  | Some (Json.Bool false) ->
      fail file lineno
        "warm_restart_pretuned is false: the persisted tune table did not relink"
  | _ -> fail file lineno "missing boolean \"warm_restart_pretuned\""

(* a [nimble-fleet/v1] line: the BENCH_fleet.json baseline *)
let check_fleet file lineno json =
  let str_member = str_member file lineno json in
  ignore (str_member "title");
  let num_of key =
    match Json.member key json with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ ->
        fail file lineno "missing numeric %S" key;
        None
  in
  let int_of key =
    match Json.member key json with
    | Some (Json.Int n) -> Some n
    | _ ->
        fail file lineno "missing integer %S" key;
        None
  in
  let bool_true key why =
    match Json.member key json with
    | Some (Json.Bool true) -> ()
    | Some (Json.Bool false) -> fail file lineno "%S is false: %s" key why
    | _ -> fail file lineno "missing boolean %S" key
  in
  (match Json.member "models" json with
  | Some (Json.List ((_ :: _ :: _) as models)) ->
      List.iteri
        (fun i m ->
          (match Json.member "name" m with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "model %d: missing string \"name\"" i);
          match Json.member "weight" m with
          | Some (Json.Int w) when w >= 1 -> ()
          | _ -> fail file lineno "model %d: missing positive \"weight\"" i)
        models
  | _ -> fail file lineno "missing \"models\" list of at least 2 entries");
  (match Json.member "points" json with
  | Some (Json.List points) ->
      let past =
        List.filter
          (fun p -> Json.member "past_saturation" p = Some (Json.Bool true))
          points
      in
      if List.length past < 3 then
        fail file lineno
          "%d offered-rate points past saturation, want at least 3"
          (List.length past);
      List.iteri
        (fun i point ->
          let ctx = Fmt.str "point %d" i in
          (match Json.member "label" point with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "%s: missing string \"label\"" ctx);
          List.iter
            (fun key ->
              match Json.member key point with
              | Some (Json.Float _) | Some (Json.Int _) -> ()
              | _ -> fail file lineno "%s: missing numeric %S" ctx key)
            [ "offered_rate_rps"; "goodput_rps" ];
          List.iter
            (fun key ->
              match Json.member key point with
              | Some (Json.Int _) -> ()
              | _ -> fail file lineno "%s: missing integer %S" ctx key)
            [ "offered"; "ok"; "shed"; "tripped"; "rejected"; "timed_out";
              "failed" ])
        points
  | Some _ | None -> fail file lineno "missing \"points\" list");
  (* no-collapse: shedding at the door must keep goodput at twice the
     saturation rate within half of the peak (graceful degradation, not a
     congestion collapse) *)
  (match (num_of "peak_goodput_rps", num_of "goodput_at_2x_rps") with
  | Some peak, Some g2x ->
      if g2x < 0.5 *. peak then
        fail file lineno
          "goodput at 2x saturation (%.0f rps) collapsed below half the peak \
           (%.0f rps)"
          g2x peak
  | _ -> ());
  (match int_of "shed_total" with
  | Some n when n >= 1 -> ()
  | Some _ -> fail file lineno "\"shed_total\" is zero: admission never shed"
  | None -> ());
  (match int_of "tripped_total" with
  | Some n when n >= 1 -> ()
  | Some _ ->
      fail file lineno "\"tripped_total\" is zero: no breaker ever refused"
  | None -> ());
  (match int_of "trips" with
  | Some n when n >= 1 -> ()
  | Some _ -> fail file lineno "\"trips\" is zero: no breaker lane opened"
  | None -> ());
  (match int_of "snapshot_models" with
  | Some n when n >= 1 -> ()
  | Some _ -> fail file lineno "\"snapshot_models\" is zero: nothing checkpointed"
  | None -> ());
  ignore (num_of "cold_start_ms");
  ignore (num_of "warm_restart_ms");
  bool_true "warm_restart_relink_only"
    "the restore recompiled instead of relinking from the registry";
  bool_true "bitwise_ok"
    "a fleet response diverged from the sequential reference"

(* Across all compile-report lines of one file: at least one model must
   show a fused group crossing a proven formerly-dynamic boundary, or the
   classification pass is decorative (docs/ANALYSIS.md). *)
let compile_fused_seen = ref false
let compile_first_line = ref None

(* a [nimble-compile/v1] line: the BENCH_compile.json baseline *)
let check_compile file lineno json =
  if !compile_first_line = None then compile_first_line := Some lineno;
  (match Json.member "instructions" json with
  | Some (Json.Int n) when n > 0 -> ()
  | Some (Json.Int _) -> fail file lineno "\"instructions\" is not positive"
  | _ -> fail file lineno "missing integer \"instructions\"");
  (let regs key =
     match Json.member key json with
     | Some (Json.Int n) -> Some n
     | _ ->
         fail file lineno "missing integer %S" key;
         None
   in
   match (regs "registers_before", regs "registers_after") with
   | Some before, Some after ->
       if after > before then
         fail file lineno
           "registers_after %d > registers_before %d (compaction never grows a frame)"
           after before
   | _ -> ());
  (* classification fields: candidate sites >= dominance-proven sites,
     both non-negative, at top level and per classify-table row *)
  (let nat ctx entry key =
     match Json.member key entry with
     | Some (Json.Int n) when n >= 0 -> Some n
     | Some (Json.Int n) ->
         fail file lineno "%s: %S is negative (%d)" ctx key n;
         None
     | _ ->
         fail file lineno "%s: missing integer %S" ctx key;
         None
   in
   let counted_vs_proven ctx entry =
     (match (nat ctx entry "sites_total", nat ctx entry "classified_static") with
     | Some total, Some proven when proven > total ->
         fail file lineno
           "%s: classified_static %d > sites_total %d (cannot prove more \
            sites than exist)"
           ctx proven total
     | _ -> ());
     nat ctx entry "fused_across_dynamic"
   in
   (match counted_vs_proven "report" json with
   | Some n when n > 0 -> compile_fused_seen := true
   | _ -> ());
   match Json.member "classify" json with
   | Some (Json.List rows) ->
       List.iteri
         (fun i row ->
           let ctx = Fmt.str "classify row %d" i in
           (match Json.member "fn" row with
           | Some (Json.String _) -> ()
           | _ -> fail file lineno "%s: missing string \"fn\"" ctx);
           ignore (counted_vs_proven ctx row))
         rows
   | _ -> fail file lineno "missing \"classify\" list");
  let num ctx entry key =
    match Json.member key entry with
    | Some (Json.Float _) | Some (Json.Int _) -> ()
    | _ -> fail file lineno "%s: missing numeric %S" ctx key
  in
  (match Json.member "passes" json with
  | Some (Json.List ((_ :: _) as passes)) ->
      List.iteri
        (fun i p ->
          let ctx = Fmt.str "pass %d" i in
          (match Json.member "name" p with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "%s: missing string \"name\"" ctx);
          num ctx p "seconds";
          (match Json.member "nodes_before" p with
          | Some (Json.Int _) -> ()
          | _ -> fail file lineno "%s: missing integer \"nodes_before\"" ctx);
          match Json.member "nodes_after" p with
          | Some (Json.Int _) -> ()
          | _ -> fail file lineno "%s: missing integer \"nodes_after\"" ctx)
        passes
  | _ -> fail file lineno "missing non-empty \"passes\" list");
  match Json.member "verify" json with
  | Some (Json.List ((_ :: _) as checks)) ->
      List.iteri
        (fun i v ->
          let ctx = Fmt.str "verify %d" i in
          (match Json.member "name" v with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "%s: missing string \"name\"" ctx);
          num ctx v "seconds";
          match Json.member "violations" v with
          | Some (Json.Int 0) -> ()
          | Some (Json.Int n) ->
              fail file lineno
                "%s: %d violations (a committed baseline must verify clean)" ctx n
          | _ -> fail file lineno "%s: missing integer \"violations\"" ctx)
        checks
  | _ ->
      fail file lineno
        "missing non-empty \"verify\" list (compile with verify_passes on)"

let check_table file lineno json =
  let str_member = str_member file lineno json in
  ignore (str_member "title");
  ignore (str_member "unit");
  let ncols =
    match Json.member "columns" json with
    | Some (Json.List cols) when cols <> [] ->
        List.iter
          (function
            | Json.String _ -> ()
            | _ -> fail file lineno "non-string entry in \"columns\"")
          cols;
        List.length cols
    | Some _ | None ->
        fail file lineno "missing or empty \"columns\" list";
        -1
  in
  match Json.member "rows" json with
  | Some (Json.List rows) when rows <> [] ->
      List.iteri
        (fun i row ->
          (match Json.member "label" row with
          | Some (Json.String _) -> ()
          | _ -> fail file lineno "row %d: missing string \"label\"" i);
          match Json.member "cells" row with
          | Some (Json.List cells) ->
              if ncols >= 0 && List.length cells <> ncols then
                fail file lineno "row %d: %d cells for %d columns" i
                  (List.length cells) ncols;
              List.iter
                (function
                  | Json.Float _ | Json.Int _ | Json.Null -> ()
                  | _ -> fail file lineno "row %d: cell is not number|null" i)
                cells
          | _ -> fail file lineno "row %d: missing \"cells\" list" i)
        rows
  | Some _ | None -> fail file lineno "missing or empty \"rows\" list"

let check_file file =
  let ic = open_in file in
  let tables = ref 0 in
  let lineno = ref 0 in
  compile_fused_seen := false;
  compile_first_line := None;
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       if String.trim line <> "" then begin
         incr tables;
         match Json.of_string line with
         | json -> (
             match Json.member "schema" json with
             | Some (Json.String "nimble-bench/v1") -> check_table file !lineno json
             | Some (Json.String "nimble-serve/v1") -> check_serve file !lineno json
             | Some (Json.String "nimble-chaos/v1") -> check_chaos file !lineno json
             | Some (Json.String "nimble-compile/v1") -> check_compile file !lineno json
             | Some (Json.String "nimble-tune/v1") -> check_tune file !lineno json
             | Some (Json.String "nimble-fleet/v1") -> check_fleet file !lineno json
             | Some (Json.String other) ->
                 fail file !lineno
                   "schema is %S, want \"nimble-bench/v1\", \"nimble-serve/v1\", \
                    \"nimble-chaos/v1\", \"nimble-compile/v1\", \
                    \"nimble-tune/v1\" or \"nimble-fleet/v1\""
                   other
             | Some _ | None -> fail file !lineno "missing string \"schema\"")
         | exception Json.Parse_error msg ->
             fail file !lineno "JSON parse error: %s" msg
       end
     done
   with End_of_file -> ());
  close_in ic;
  if !tables = 0 then fail file 0 "no tables found (empty file)";
  match !compile_first_line with
  | Some line when not !compile_fused_seen ->
      fail file line
        "no compile report has fused_across_dynamic > 0 (at least one zoo \
         model must fuse across a proven dynamic boundary)"
  | _ -> ()

let () =
  let files = List.tl (Array.to_list Sys.argv) in
  if files = [] then begin
    prerr_endline "usage: bench_check FILE...";
    exit 2
  end;
  List.iter check_file files;
  if !problems > 0 then begin
    Format.eprintf "bench_check: %d problem(s)@." !problems;
    exit 1
  end
