(** doc_lint — validate interface documentation without odoc.

    The container has no [odoc] binary, so [dune build @doc] cannot render
    HTML; this linter gives the alias teeth anyway. It scans the given
    directories for OCaml sources and checks, cheaply but strictly:

    - every doc comment ([(** ... *)]) has balanced [{]/[}] markup and
      balanced [[]] code spans (contents of [{[ ... ]}] and [{v ... v}]
      blocks are treated as opaque code);
    - [@param]/[@raise]/[@see] tags name their subject;
    - every [.mli] under [lib/vm], [lib/analysis], [lib/passes],
      [lib/serve] and [lib/codegen] opens with a module doc comment and
      documents every [val] (doc above, or trailing on the same line) —
      the VM is the repo's public telemetry surface, the analysis layer
      its safety surface, the pass pipeline its compile surface, the
      serving engine its operational surface and codegen its
      dispatch/tuning surface, so those interfaces must stay fully
      documented.

    Exit status 0 when clean, 1 when any check fails (one line per
    finding, [file:line: message]). Run via [dune build @doc]. *)

let errors = ref 0

let err file line fmt =
  incr errors;
  Printf.ksprintf (fun s -> Printf.eprintf "%s:%d: %s\n" file line s) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------ comment extraction ------------------------ *)

type comment = { c_doc : bool; c_line : int; c_end_line : int; c_body : string }

(** Extract all comments, tracking nesting and string literals inside them
    (OCaml lexes ["*)"] inside a quoted string as part of the string). *)
let comments_of src : comment list =
  let n = String.length src in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let bump c = if c = '\n' then incr line in
  while !i < n do
    let c = src.[!i] in
    if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      (* comment start: walk to the matching close *)
      let start_line = !line in
      let body_start = !i + 2 in
      let depth = ref 1 in
      i := !i + 2;
      let in_string = ref false in
      while !depth > 0 && !i < n do
        let c = src.[!i] in
        bump c;
        if !in_string then begin
          if c = '\\' && !i + 1 < n then begin
            bump src.[!i + 1];
            i := !i + 2
          end
          else begin
            if c = '"' then in_string := false;
            incr i
          end
        end
        else if c = '"' then begin
          in_string := true;
          incr i
        end
        else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
          incr depth;
          i := !i + 2
        end
        else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
          decr depth;
          i := !i + 2
        end
        else incr i
      done;
      let body_end = if !depth = 0 then !i - 2 else !i in
      let body = String.sub src body_start (max 0 (body_end - body_start)) in
      let doc =
        String.length body > 0 && body.[0] = '*' && body <> "*"
        (* "(**)" is an empty plain comment, "(***" a decoration line *)
        && not (String.length body > 1 && body.[1] = '*')
      in
      out :=
        {
          c_doc = doc;
          c_line = start_line;
          c_end_line = !line;
          c_body = (if doc then String.sub body 1 (String.length body - 1) else body);
        }
        :: !out
    end
    else if c = '"' then begin
      (* string literal outside comments: skip so "(*" inside it is inert *)
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        bump c;
        if c = '\\' && !i + 1 < n then begin
          bump src.[!i + 1];
          i := !i + 2
        end
        else begin
          if c = '"' then closed := true;
          incr i
        end
      done
    end
    else begin
      bump c;
      incr i
    end
  done;
  List.rev !out

(* -------------------------- markup checks -------------------------- *)

(** Check one doc comment's markup: balanced braces/brackets outside
    verbatim and code blocks, terminated blocks, non-empty tags. *)
let check_markup file (c : comment) =
  let body = c.c_body in
  let n = String.length body in
  let line = ref c.c_line in
  let braces = ref 0 and brackets = ref 0 in
  let i = ref 0 in
  let bump ch = if ch = '\n' then incr line in
  (* skip to the closing delimiter of a {[ ]} or {v v} block *)
  let skip_block close_a close_b what =
    let start_line = !line in
    let closed = ref false in
    while (not !closed) && !i < n do
      let ch = body.[!i] in
      bump ch;
      if ch = close_a && !i + 1 < n && body.[!i + 1] = close_b then begin
        closed := true;
        i := !i + 2
      end
      else incr i
    done;
    if not !closed then err file start_line "unterminated %s block" what
  in
  while !i < n do
    let ch = body.[!i] in
    if ch = '\\' && !i + 1 < n then begin
      bump body.[!i + 1];
      i := !i + 2 (* escaped char, e.g. \{ or \[ *)
    end
    else begin
      bump ch;
      (match ch with
      | '{' when !i + 1 < n && body.[!i + 1] = '[' ->
          incr i;
          incr i;
          skip_block ']' '}' "{[ ]} code"
      | '{' when !i + 1 < n && body.[!i + 1] = 'v' ->
          incr i;
          incr i;
          skip_block 'v' '}' "{v v} verbatim"
      | '{' ->
          incr braces;
          incr i
      | '}' ->
          decr braces;
          if !braces < 0 then begin
            err file !line "unmatched '}' in doc comment";
            braces := 0
          end;
          incr i
      | '[' ->
          incr brackets;
          incr i
      | ']' ->
          decr brackets;
          if !brackets < 0 then begin
            err file !line "unmatched ']' in doc comment";
            brackets := 0
          end;
          incr i
      | '@' ->
          (* tags must name a subject: "@param x", "@raise Exn" *)
          let j = ref (!i + 1) in
          while !j < n && (match body.[!j] with 'a' .. 'z' -> true | _ -> false) do
            incr j
          done;
          let tag = String.sub body (!i + 1) (!j - !i - 1) in
          (if List.mem tag [ "param"; "raise"; "see" ] then
             let k = ref !j in
             let _ =
               while !k < n && body.[!k] = ' ' do
                 incr k
               done
             in
             if !k >= n || body.[!k] = '\n' then
               err file !line "@%s tag without a subject" tag);
          i := !j
      | _ -> incr i)
    end
  done;
  if !braces > 0 then err file c.c_line "%d unclosed '{' in doc comment" !braces;
  if !brackets > 0 then err file c.c_line "%d unclosed '[' in doc comment" !brackets

(* ------------------------- coverage checks ------------------------- *)

let starts_with_val s =
  let s = String.trim s in
  String.length s >= 4 && String.sub s 0 4 = "val "

(** Every [val] in the interface must carry a doc comment: either one
    ending on the line directly above (blank lines allowed in between) or
    one starting on the [val]'s own line (trailing style). *)
let check_coverage file src (comments : comment list) =
  let docs = List.filter (fun c -> c.c_doc) comments in
  let in_comment line =
    List.exists (fun c -> c.c_line <= line && line <= c.c_end_line) comments
  in
  (match docs with
  | first :: _ when first.c_line <= 3 -> ()
  | _ -> err file 1 "interface has no leading module doc comment");
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun idx l ->
      let ln = idx + 1 in
      if starts_with_val l && not (in_comment ln) then
        let documented =
          List.exists
            (fun c ->
              c.c_line = ln
              ||
              (* nearest code above must be the doc's last line *)
              (c.c_end_line < ln
              &&
              let rec blank_between k =
                k >= ln
                || (String.trim (List.nth lines (k - 1)) = "" && blank_between (k + 1))
              in
              blank_between (c.c_end_line + 1)))
            docs
        in
        if not documented then
          err file ln "undocumented val: %s" (String.trim l))
    lines

(* ------------------------------ driver ------------------------------ *)

let is_source f =
  Filename.check_suffix f ".ml" || Filename.check_suffix f ".mli"

let rec walk dir acc =
  if Filename.basename dir = "_build" then acc
  else
    Array.fold_left
      (fun acc entry ->
        let path = Filename.concat dir entry in
        if Sys.is_directory path then walk path acc
        else if is_source entry then path :: acc
        else acc)
      acc (Sys.readdir dir)

let covered path =
  (* full doc coverage is enforced on the VM's public interfaces, on the
     analysis layer (the verifier/lints are the repo's safety surface;
     see docs/ANALYSIS.md), on the pass pipeline (the compile surface the
     memory dialect flows through; see docs/MEMORY.md), on the serving
     engine (docs/SERVING.md) and on codegen (the dispatch/tuning surface
     the online specializer re-wires while serving; see docs/TUNING.md) *)
  let under prefix =
    String.length path >= String.length prefix
    && String.sub path 0 (String.length prefix) = prefix
  in
  Filename.check_suffix path ".mli"
  && (under "lib/vm/" || under "lib/analysis/" || under "lib/passes/"
     || under "lib/serve/" || under "lib/codegen/")

let () =
  let roots =
    match Array.to_list Sys.argv with _ :: (_ :: _ as roots) -> roots | _ -> [ "lib" ]
  in
  let files = List.concat_map (fun r -> List.sort compare (walk r [])) roots in
  List.iter
    (fun path ->
      let src = read_file path in
      let comments = comments_of src in
      List.iter (fun c -> if c.c_doc then check_markup path c) comments;
      if covered path then check_coverage path src comments)
    files;
  if !errors > 0 then begin
    Printf.eprintf "doc_lint: %d problem(s) in %d file(s) scanned\n" !errors
      (List.length files);
    exit 1
  end
  else Printf.printf "doc_lint: %d files clean\n" (List.length files)
